package align

import (
	"math/rand"
	"testing"

	"pace/internal/seq"
)

func newExt(t testing.TB, band int) *Extender {
	t.Helper()
	e, err := NewExtender(DefaultScoring(), band)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewExtenderValidation(t *testing.T) {
	if _, err := NewExtender(DefaultScoring(), 0); err == nil {
		t.Error("band 0 must fail")
	}
	if _, err := NewExtender(Scoring{}, 5); err == nil {
		t.Error("invalid scoring must fail")
	}
}

func TestExtendAnchorRangeChecks(t *testing.T) {
	e := newExt(t, 5)
	a := mustSeq(t, "ACGTACGT")
	if _, err := e.Extend(a, a, 0, 0, 9); err == nil {
		t.Error("over-long anchor must fail")
	}
	if _, err := e.Extend(a, a, -1, 0, 2); err == nil {
		t.Error("negative pos must fail")
	}
	if _, err := e.Extend(a, a, 7, 7, 2); err == nil {
		t.Error("anchor past end must fail")
	}
}

func TestExtendIdenticalStrings(t *testing.T) {
	e := newExt(t, 10)
	sc := DefaultScoring()
	a := mustSeq(t, "ACGTACGTACGTACGTACGT")
	res, err := e.Extend(a, a, 5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != int32(len(a))*sc.Match {
		t.Errorf("score %d want %d", res.Score, int32(len(a))*sc.Match)
	}
	if res.Matches != int32(len(a)) || res.Cols != int32(len(a)) {
		t.Errorf("counts: %+v", res.Stats)
	}
	if !res.LeftA || !res.LeftB || !res.RightA || !res.RightB {
		t.Errorf("boundaries: %+v", res)
	}
	if res.Pattern == PatternNone {
		t.Error("identical strings must realize a pattern")
	}
	if res.Identity() != 1 || res.ScoreRatio(sc) != 1 {
		t.Errorf("quality: id=%f ratio=%f", res.Identity(), res.ScoreRatio(sc))
	}
}

func TestExtendSuffixPrefixOverlap(t *testing.T) {
	e := newExt(t, 10)
	rng := rand.New(rand.NewSource(2))
	ov := randSeq(rng, 60)
	a := append(randSeq(rng, 40), ov...)
	b := append(ov.Clone(), randSeq(rng, 40)...)
	// Anchor in the middle of the shared region.
	res, err := e.Extend(a, b, 40+10, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern != ASuffixBPrefix {
		t.Errorf("pattern %v want %v (%+v)", res.Pattern, ASuffixBPrefix, res)
	}
	if res.Cols != 60 || res.Matches != 60 {
		t.Errorf("overlap extent: %+v", res.Stats)
	}
	if !res.LeftB || !res.RightA || res.LeftA || res.RightB {
		t.Errorf("boundary flags: %+v", res)
	}
}

func TestExtendContainment(t *testing.T) {
	e := newExt(t, 10)
	rng := rand.New(rand.NewSource(3))
	inner := randSeq(rng, 80)
	outer := append(append(randSeq(rng, 50), inner...), randSeq(rng, 50)...)
	res, err := e.Extend(outer, inner, 50+30, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pattern != AContainsB {
		t.Errorf("pattern %v (%+v)", res.Pattern, res)
	}
	if res.Matches != 80 {
		t.Errorf("matches %d want 80", res.Matches)
	}
}

func TestExtendWithInsertion(t *testing.T) {
	sc := DefaultScoring()
	e := newExt(t, 10)
	p := mustSeq(t, "ACGTACGTAC")
	s := mustSeq(t, "GTCAGTCAGT")
	a := append(p.Clone(), s...)
	b := append(append(p.Clone(), seq.A), s...) // one extra A in the middle
	res, err := e.Extend(a, b, 0, 0, int32(len(p)))
	if err != nil {
		t.Fatal(err)
	}
	want := 20*sc.Match + sc.GapOpen + sc.GapExtend
	if res.Score != want {
		t.Errorf("score %d want %d (%+v)", res.Score, want, res)
	}
	if res.Cols != 21 || res.Matches != 20 {
		t.Errorf("counts: %+v", res.Stats)
	}
}

func TestExtendWithMismatches(t *testing.T) {
	sc := DefaultScoring()
	e := newExt(t, 10)
	rng := rand.New(rand.NewSource(4))
	a := randSeq(rng, 100)
	b := a.Clone()
	// Two substitutions outside the anchor region [40,60).
	b[10] = b[10] ^ 1
	b[80] = b[80] ^ 2
	res, err := e.Extend(a, b, 40, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := 98*sc.Match + 2*sc.Mismatch
	if res.Score != want {
		t.Errorf("score %d want %d", res.Score, want)
	}
	if res.Matches != 98 || res.Cols != 100 {
		t.Errorf("counts: %+v", res.Stats)
	}
}

func TestExtendDisjointRejected(t *testing.T) {
	sc := DefaultScoring()
	e := newExt(t, 10)
	rng := rand.New(rand.NewSource(8))
	// Strings share only a short spurious anchor.
	anchor := randSeq(rng, 12)
	a := append(append(randSeq(rng, 100), anchor...), randSeq(rng, 100)...)
	b := append(append(randSeq(rng, 100), anchor...), randSeq(rng, 100)...)
	res, err := e.Extend(a, b, 100, 100, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accept(sc, DefaultCriteria()) {
		t.Errorf("spurious anchor must not be accepted: %+v", res)
	}
}

func TestExtendAnchorAtBoundary(t *testing.T) {
	e := newExt(t, 5)
	a := mustSeq(t, "ACGTACGT")
	res, err := e.Extend(a, a, 0, 0, int32(len(a)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols != int32(len(a)) || res.Pattern == PatternNone {
		t.Errorf("full-anchor result: %+v", res)
	}
}

func TestExtendZeroAnchor(t *testing.T) {
	// A zero-length anchor at the junction of a perfect suffix-prefix
	// overlap still extends correctly in both directions.
	e := newExt(t, 10)
	rng := rand.New(rand.NewSource(12))
	ov := randSeq(rng, 30)
	a := append(randSeq(rng, 20), ov...)
	b := append(ov.Clone(), randSeq(rng, 20)...)
	res, err := e.Extend(a, b, 20+15, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != 30 || res.Pattern != ASuffixBPrefix {
		t.Errorf("zero-anchor: %+v", res)
	}
}

// Property: for truly overlapping pairs with moderate error, the banded
// anchored extension matches the unbanded overlap aligner's score.
func TestExtendMatchesOverlapAligner(t *testing.T) {
	sc := DefaultScoring()
	e := newExt(t, 15)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		ov := randSeq(rng, 50+rng.Intn(100))
		a := append(randSeq(rng, rng.Intn(80)), ov...)
		b := append(ov.Clone(), randSeq(rng, rng.Intn(80))...)
		// Sprinkle a few substitutions into b's copy of the overlap,
		// keeping an exact anchor window in the middle.
		mid := len(ov) / 2
		for k := 0; k < 3; k++ {
			p := rng.Intn(len(ov))
			if p >= mid-8 && p < mid+8 {
				continue
			}
			b[p] ^= seq.Code(1 + rng.Intn(3))
		}
		res, err := e.Extend(a, b, int32(len(a)-len(ov)+mid-8), int32(mid-8), 16)
		if err != nil {
			t.Fatal(err)
		}
		ref := Overlap(a, b, sc)
		if res.Score != ref.Score {
			t.Fatalf("trial %d: banded %d != overlap %d", trial, res.Score, ref.Score)
		}
		if res.Pattern != ref.Pattern {
			t.Fatalf("trial %d: pattern %v != %v", trial, res.Pattern, ref.Pattern)
		}
	}
}

func TestExtenderReuseIsDeterministic(t *testing.T) {
	e := newExt(t, 10)
	rng := rand.New(rand.NewSource(99))
	a := randSeq(rng, 200)
	b := append(a[50:].Clone(), randSeq(rng, 50)...)
	r1, err := e.Extend(a, b, 60, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Run unrelated extensions to dirty the scratch buffers.
	for i := 0; i < 5; i++ {
		x, y := randSeq(rng, 150), randSeq(rng, 150)
		if _, err := e.Extend(x, y, 10, 10, 5); err != nil {
			t.Fatal(err)
		}
	}
	r2, err := e.Extend(a, b, 60, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("reuse changed result: %+v vs %+v", r1, r2)
	}
}

func TestAcceptCriteria(t *testing.T) {
	sc := DefaultScoring()
	good := Result{
		Stats:   Stats{Score: 100 * sc.Match, Cols: 100, Matches: 100},
		Pattern: ASuffixBPrefix,
	}
	cr := DefaultCriteria()
	if !good.Accept(sc, cr) {
		t.Error("perfect overlap must be accepted")
	}
	short := good
	short.Cols, short.Matches, short.Score = 10, 10, 10*sc.Match
	if short.Accept(sc, cr) {
		t.Error("short overlap must be rejected")
	}
	none := good
	none.Pattern = PatternNone
	if none.Accept(sc, cr) {
		t.Error("patternless result must be rejected")
	}
	dirty := good
	dirty.Matches = 70
	dirty.Score = 70*sc.Match + 30*sc.Mismatch
	if dirty.Accept(sc, cr) {
		t.Error("low-identity result must be rejected")
	}
}

func BenchmarkExtend600(b *testing.B) {
	e := newExt(b, 15)
	rng := rand.New(rand.NewSource(1))
	ov := randSeq(rng, 300)
	x := append(randSeq(rng, 300), ov...)
	y := append(ov.Clone(), randSeq(rng, 300)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Extend(x, y, 450, 150, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: the banded anchored extension is a restriction of overlap
// alignment, so its score can never exceed the unbanded overlap optimum.
func TestExtendNeverBeatsOverlap(t *testing.T) {
	sc := DefaultScoring()
	e := newExt(t, 8)
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		anchor := randSeq(rng, 8+rng.Intn(20))
		aLeft, bLeft := rng.Intn(60), rng.Intn(60)
		a := append(append(randSeq(rng, aLeft), anchor...), randSeq(rng, rng.Intn(60))...)
		b := append(append(randSeq(rng, bLeft), anchor...), randSeq(rng, rng.Intn(60))...)
		pa, pb := int32(aLeft), int32(bLeft)
		res, err := e.Extend(a, b, pa, pb, int32(len(anchor)))
		if err != nil {
			t.Fatal(err)
		}
		ref := Overlap(a, b, sc)
		if res.Score > ref.Score {
			t.Fatalf("trial %d: banded %d beats unbanded optimum %d", trial, res.Score, ref.Score)
		}
	}
}

// Property: extension results are symmetric under swapping the sequences
// (scores equal, boundary flags mirrored).
func TestExtendSymmetry(t *testing.T) {
	e := newExt(t, 10)
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		ov := randSeq(rng, 30+rng.Intn(40))
		a := append(randSeq(rng, rng.Intn(50)), ov...)
		b := append(ov.Clone(), randSeq(rng, rng.Intn(50))...)
		pa, pb := int32(len(a)-len(ov)), int32(0)
		r1, err := e.Extend(a, b, pa, pb, int32(len(ov)))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := e.Extend(b, a, pb, pa, int32(len(ov)))
		if err != nil {
			t.Fatal(err)
		}
		if r1.Score != r2.Score || r1.Cols != r2.Cols || r1.Matches != r2.Matches {
			t.Fatalf("trial %d: asymmetric stats %+v vs %+v", trial, r1.Stats, r2.Stats)
		}
		if r1.LeftA != r2.LeftB || r1.LeftB != r2.LeftA ||
			r1.RightA != r2.RightB || r1.RightB != r2.RightA {
			t.Fatalf("trial %d: flags not mirrored", trial)
		}
	}
}
