package align

import "pace/internal/seq"

// cell carries the dominant-path statistics for one DP state: the score of
// the best alignment ending in that state, its column/match counts, and —
// for free-end-gap alignment — which string's left boundary the path started
// on.
type cell struct {
	score   int32
	cols    int32
	matches int32
	leftA   bool
	leftB   bool
}

var deadCell = cell{score: negInf}

// better returns the cell with the higher score.
func better(a, b cell) cell {
	if a.score >= b.score {
		return a
	}
	return b
}

// stats extracts the Stats of a cell.
func (c cell) stats() Stats {
	return Stats{Score: c.score, Cols: c.cols, Matches: c.matches}
}

// subst scores one column aligning x against y.
func subst(sc Scoring, x, y seq.Code) (score int32, match bool) {
	if x == y {
		return sc.Match, true
	}
	return sc.Mismatch, false
}

// extendDiag applies a substitution column to a predecessor cell.
func extendDiag(p cell, sc Scoring, x, y seq.Code) cell {
	if p.score <= negInf {
		return deadCell
	}
	s, m := subst(sc, x, y)
	p.score += s
	p.cols++
	if m {
		p.matches++
	}
	return p
}

// extendGap applies one gap character, opening if fromOpen.
func extendGap(p cell, sc Scoring, open bool) cell {
	if p.score <= negInf {
		return deadCell
	}
	p.score += sc.GapExtend
	if open {
		p.score += sc.GapOpen
	}
	p.cols++
	return p
}

// Global computes the optimal global (Needleman–Wunsch) alignment of a and b
// with affine gap penalties and returns its statistics. It is the reference
// aligner used to validate the banded production path.
func Global(a, b seq.Sequence, sc Scoring) Stats {
	n, m := len(a), len(b)
	// Rolling two rows per layer.
	mPrev := make([]cell, m+1)
	mCur := make([]cell, m+1)
	xPrev := make([]cell, m+1)
	xCur := make([]cell, m+1)
	yPrev := make([]cell, m+1)
	yCur := make([]cell, m+1)

	mPrev[0] = cell{}
	xPrev[0], yPrev[0] = deadCell, deadCell
	for j := 1; j <= m; j++ {
		mPrev[j], xPrev[j] = deadCell, deadCell
		yPrev[j] = extendGap(betterOf3(mPrev[j-1], xPrev[j-1], yPrev[j-1]), sc, j == 1)
	}
	for i := 1; i <= n; i++ {
		mCur[0], yCur[0] = deadCell, deadCell
		if i == 1 {
			xCur[0] = extendGap(mPrev[0], sc, true)
		} else {
			xCur[0] = extendGap(xPrev[0], sc, false)
		}
		for j := 1; j <= m; j++ {
			mCur[j] = extendDiag(betterOf3(mPrev[j-1], xPrev[j-1], yPrev[j-1]), sc, a[i-1], b[j-1])
			xCur[j] = better(
				extendGap(better(mPrev[j], yPrev[j]), sc, true),
				extendGap(xPrev[j], sc, false))
			yCur[j] = better(
				extendGap(better(mCur[j-1], xCur[j-1]), sc, true),
				extendGap(yCur[j-1], sc, false))
		}
		mPrev, mCur = mCur, mPrev
		xPrev, xCur = xCur, xPrev
		yPrev, yCur = yCur, yPrev
	}
	return betterOf3(mPrev[m], xPrev[m], yPrev[m]).stats()
}

func betterOf3(a, b, c cell) cell {
	return better(a, better(b, c))
}

// Local computes the optimal local (Smith–Waterman) alignment statistics of
// a and b with affine gap penalties.
func Local(a, b seq.Sequence, sc Scoring) Stats {
	n, m := len(a), len(b)
	mPrev := make([]cell, m+1)
	mCur := make([]cell, m+1)
	xPrev := make([]cell, m+1)
	xCur := make([]cell, m+1)
	yPrev := make([]cell, m+1)
	yCur := make([]cell, m+1)
	for j := 0; j <= m; j++ {
		mPrev[j], xPrev[j], yPrev[j] = cell{}, deadCell, deadCell
	}
	best := cell{}
	for i := 1; i <= n; i++ {
		mCur[0], xCur[0], yCur[0] = cell{}, deadCell, deadCell
		for j := 1; j <= m; j++ {
			// A local alignment may restart at any position.
			start := better(betterOf3(mPrev[j-1], xPrev[j-1], yPrev[j-1]), cell{})
			mCur[j] = extendDiag(start, sc, a[i-1], b[j-1])
			xCur[j] = better(
				extendGap(better(mPrev[j], yPrev[j]), sc, true),
				extendGap(xPrev[j], sc, false))
			yCur[j] = better(
				extendGap(better(mCur[j-1], xCur[j-1]), sc, true),
				extendGap(yCur[j-1], sc, false))
			best = better(best, mCur[j])
		}
		mPrev, mCur = mCur, mPrev
		xPrev, xCur = xCur, xPrev
		yPrev, yCur = yCur, yPrev
	}
	if best.score < 0 {
		return Stats{}
	}
	return best.stats()
}

// OverlapResult is the outcome of a free-end-gap (overlap) alignment.
type OverlapResult struct {
	Stats
	Pattern Pattern
}

// Overlap computes the optimal overlap alignment of a and b: leading and
// trailing unaligned tails of either string are free. This realizes exactly
// the merge-evidence geometry of the paper's Figure 5b and is the reference
// against which the anchored banded extension path is validated; it is also
// the aligner used by the CAP3-style baseline.
func Overlap(a, b seq.Sequence, sc Scoring) OverlapResult {
	n, m := len(a), len(b)
	mPrev := make([]cell, m+1)
	mCur := make([]cell, m+1)
	xPrev := make([]cell, m+1)
	xCur := make([]cell, m+1)
	yPrev := make([]cell, m+1)
	yCur := make([]cell, m+1)

	// Free start anywhere on the top or left boundary. Starting at (0,j)
	// skips a prefix of b, so the alignment covers a's start: leftA.
	// Starting at (i,0) symmetrically marks leftB.
	mPrev[0] = cell{leftA: true, leftB: true}
	xPrev[0], yPrev[0] = deadCell, deadCell
	for j := 1; j <= m; j++ {
		mPrev[j] = cell{leftA: true}
		xPrev[j], yPrev[j] = deadCell, deadCell
	}

	best := deadCell
	bestRightA, bestRightB := false, false
	consider := func(c cell, rightA, rightB bool) {
		if c.score > best.score {
			best, bestRightA, bestRightB = c, rightA, rightB
		}
	}
	// The empty alignment — skipping one sequence entirely as a free
	// prefix and the other as a free suffix — is a valid overlap
	// alignment of score 0 and bounds the result from below (endpoints
	// (n,0) and (0,m), which the cell loop below never visits).
	consider(cell{leftB: true}, true, m == 0)
	consider(cell{leftA: true}, n == 0, true)

	for i := 1; i <= n; i++ {
		mCur[0] = cell{leftB: true}
		xCur[0], yCur[0] = deadCell, deadCell
		for j := 1; j <= m; j++ {
			mCur[j] = extendDiag(betterOf3(mPrev[j-1], xPrev[j-1], yPrev[j-1]), sc, a[i-1], b[j-1])
			xCur[j] = better(
				extendGap(better(mPrev[j], yPrev[j]), sc, true),
				extendGap(xPrev[j], sc, false))
			yCur[j] = better(
				extendGap(better(mCur[j-1], xCur[j-1]), sc, true),
				extendGap(yCur[j-1], sc, false))
			if i == n || j == m {
				consider(betterOf3(mCur[j], xCur[j], yCur[j]), i == n, j == m)
			}
		}
		mPrev, mCur = mCur, mPrev
		xPrev, xCur = xCur, xPrev
		yPrev, yCur = yCur, yPrev
	}
	// Degenerate empty inputs: the zero-extent alignment at the origin.
	if n == 0 || m == 0 {
		return OverlapResult{Pattern: classify(true, true, true, true)}
	}
	return OverlapResult{
		Stats:   best.stats(),
		Pattern: classify(best.leftA, best.leftB, bestRightA, bestRightB),
	}
}
