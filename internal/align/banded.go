package align

import (
	"fmt"

	"pace/internal/seq"
)

// Result is the outcome of an anchored banded extension: the combined
// statistics of left extension + anchor + right extension, the boundary
// flags of each side (which string's end the extension reached), and the
// overlap pattern they imply.
type Result struct {
	Stats
	Pattern Pattern
	// LeftA/LeftB report whether the left extension reached the start of
	// a/b; RightA/RightB whether the right extension reached the end.
	LeftA, LeftB, RightA, RightB bool
	// AnchorLen is the maximal-common-substring length the alignment was
	// anchored on.
	AnchorLen int32
}

// Accept applies the acceptance rule: the alignment must realize one of the
// four merge-evidence patterns and clear every quality threshold.
func (r Result) Accept(sc Scoring, cr Criteria) bool {
	return r.Pattern != PatternNone &&
		r.Cols >= cr.MinOverlap &&
		r.Identity() >= cr.MinIdentity &&
		r.ScoreRatio(sc) >= cr.MinScoreRatio
}

// Extender performs anchored banded extensions (the paper's Figure 5a).
// Instead of aligning two whole ESTs, the maximal common substring match
// already located by the suffix tree is extended at both ends with dynamic
// programming restricted to a diagonal band whose width reflects the number
// of sequencing errors tolerated. An Extender's scratch buffers are reused
// across calls; it is not safe for concurrent use — each worker owns one.
type Extender struct {
	sc    Scoring
	band  int
	width int

	revA, revB []seq.Code

	mPrev, mCur []cell
	xPrev, xCur []cell
	yPrev, yCur []cell
}

// NewExtender creates an Extender with the given scoring and band half-width
// (the alignment explores diagonals within ±band of the anchor diagonal).
func NewExtender(sc Scoring, band int) (*Extender, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if band < 1 {
		return nil, fmt.Errorf("align: band must be >= 1, got %d", band)
	}
	w := 2*band + 1
	e := &Extender{sc: sc, band: band, width: w}
	e.mPrev = make([]cell, w)
	e.mCur = make([]cell, w)
	e.xPrev = make([]cell, w)
	e.xCur = make([]cell, w)
	e.yPrev = make([]cell, w)
	e.yCur = make([]cell, w)
	return e, nil
}

// Band returns the configured band half-width.
func (e *Extender) Band() int { return e.band }

// Extend aligns a and b by extending the exact match
// a[posA:posA+anchorLen] == b[posB:posB+anchorLen] at both ends.
// The caller guarantees the anchor is a genuine common substring; positions
// are validated, anchor content is not (it comes from the suffix tree).
func (e *Extender) Extend(a, b seq.Sequence, posA, posB, anchorLen int32) (Result, error) {
	if anchorLen < 0 || posA < 0 || posB < 0 ||
		int(posA+anchorLen) > len(a) || int(posB+anchorLen) > len(b) {
		return Result{}, fmt.Errorf("align: anchor (%d,%d,+%d) out of range for lengths %d,%d",
			posA, posB, anchorLen, len(a), len(b))
	}
	anchor := Stats{
		Score:   anchorLen * e.sc.Match,
		Cols:    anchorLen,
		Matches: anchorLen,
	}

	right, rightA, rightB := e.bandAlign(a[posA+anchorLen:], b[posB+anchorLen:])

	e.revA = reverseInto(e.revA[:0], a[:posA])
	e.revB = reverseInto(e.revB[:0], b[:posB])
	left, leftA, leftB := e.bandAlign(e.revA, e.revB)

	res := Result{
		Stats:     anchor.add(right.stats()).add(left.stats()),
		LeftA:     leftA,
		LeftB:     leftB,
		RightA:    rightA,
		RightB:    rightB,
		AnchorLen: anchorLen,
	}
	res.Pattern = classify(leftA, leftB, rightA, rightB)
	return res, nil
}

func reverseInto(dst, src []seq.Code) []seq.Code {
	for i := len(src) - 1; i >= 0; i-- {
		dst = append(dst, src[i])
	}
	return dst
}

// bandAlign computes the best banded alignment of a prefix of a with a
// prefix of b such that at least one of the two is consumed entirely
// (the other's tail dangles free past the string boundary). It returns the
// dominant-path cell plus which inputs were exhausted at the chosen endpoint.
func (e *Extender) bandAlign(a, b []seq.Code) (best cell, aEx, bEx bool) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return cell{}, n == 0, m == 0
	}
	bd, w := e.band, e.width
	mPrev, mCur := e.mPrev, e.mCur
	xPrev, xCur := e.xPrev, e.xCur
	yPrev, yCur := e.yPrev, e.yCur

	best = deadCell
	consider := func(c cell, ea, eb bool) {
		if c.score > best.score {
			best, aEx, bEx = c, ea, eb
		}
	}

	// Row 0: j = k - bd.
	for k := 0; k < w; k++ {
		j := k - bd
		mPrev[k], xPrev[k], yPrev[k] = deadCell, deadCell, deadCell
		switch {
		case j < 0 || j > m:
			// outside
		case j == 0:
			mPrev[k] = cell{}
		default:
			yPrev[k] = better(
				extendGap(better(mPrev[k-1], xPrev[k-1]), e.sc, true),
				extendGap(yPrev[k-1], e.sc, false))
			if j == m {
				consider(yPrev[k], false, true)
			}
		}
	}

	for i := 1; i <= n; i++ {
		for k := 0; k < w; k++ {
			j := i - bd + k
			if j < 0 || j > m {
				mCur[k], xCur[k], yCur[k] = deadCell, deadCell, deadCell
				continue
			}
			// Diagonal predecessor (i-1, j-1) sits at the same k in
			// the previous row; the vertical predecessor (i-1, j) at
			// k+1; the horizontal predecessor (i, j-1) at k-1.
			if j == 0 {
				mCur[k], yCur[k] = deadCell, deadCell
			} else {
				mCur[k] = extendDiag(betterOf3(mPrev[k], xPrev[k], yPrev[k]), e.sc, a[i-1], b[j-1])
				if k > 0 {
					yCur[k] = better(
						extendGap(better(mCur[k-1], xCur[k-1]), e.sc, true),
						extendGap(yCur[k-1], e.sc, false))
				} else {
					yCur[k] = deadCell
				}
			}
			if k+1 < w {
				xCur[k] = better(
					extendGap(better(mPrev[k+1], yPrev[k+1]), e.sc, true),
					extendGap(xPrev[k+1], e.sc, false))
			} else {
				xCur[k] = deadCell
			}
			if i == n || j == m {
				consider(betterOf3(mCur[k], xCur[k], yCur[k]), i == n, j == m)
			}
		}
		mPrev, mCur = mCur, mPrev
		xPrev, xCur = xCur, xPrev
		yPrev, yCur = yCur, yPrev
	}
	return best, aEx, bEx
}
