package align

import "pace/internal/seq"

// OverlapTrace is a full overlap alignment with its edit script and the
// coordinates of the aligned region in both sequences.
type OverlapTrace struct {
	Stats
	Pattern Pattern
	// AStart/AEnd and BStart/BEnd delimit the aligned region (half-open)
	// in a and b; the Cigar aligns exactly a[AStart:AEnd] vs
	// b[BStart:BEnd].
	AStart, AEnd int32
	BStart, BEnd int32
	Cigar        Cigar
}

// OverlapWithTrace computes the optimal free-end-gap alignment of a and b
// with full traceback. O(n·m) time and space; used by the consensus and
// splice-analysis layers, not the clustering hot path.
func OverlapWithTrace(a, b seq.Sequence, sc Scoring) OverlapTrace {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return OverlapTrace{Pattern: classify(true, true, true, true)}
	}
	type tcell struct {
		score int32
		from  uint8 // 0=M, 1=X, 2=Y, 3=free start
	}
	idx := func(i, j int) int { return i*(m+1) + j }
	M := make([]tcell, (n+1)*(m+1))
	X := make([]tcell, (n+1)*(m+1))
	Y := make([]tcell, (n+1)*(m+1))
	for k := range M {
		M[k].score, X[k].score, Y[k].score = negInf, negInf, negInf
	}
	// Free starts anywhere on the top or left boundary.
	for j := 0; j <= m; j++ {
		M[idx(0, j)] = tcell{score: 0, from: 3}
	}
	for i := 0; i <= n; i++ {
		M[idx(i, 0)] = tcell{score: 0, from: 3}
	}

	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			s, _ := subst(sc, a[i-1], b[j-1])
			pm, px, py := M[idx(i-1, j-1)].score, X[idx(i-1, j-1)].score, Y[idx(i-1, j-1)].score
			best, from := pm, uint8(0)
			if px > best {
				best, from = px, 1
			}
			if py > best {
				best, from = py, 2
			}
			if best > negInf {
				M[idx(i, j)] = tcell{score: best + s, from: from}
			}

			openM := M[idx(i-1, j)].score
			openY := Y[idx(i-1, j)].score
			oBest, oFrom := openM, uint8(0)
			if openY > oBest {
				oBest, oFrom = openY, 2
			}
			oBest += sc.GapOpen + sc.GapExtend
			ext := X[idx(i-1, j)].score + sc.GapExtend
			if oBest >= ext {
				X[idx(i, j)] = tcell{score: oBest, from: oFrom}
			} else {
				X[idx(i, j)] = tcell{score: ext, from: 1}
			}

			openM = M[idx(i, j-1)].score
			openX := X[idx(i, j-1)].score
			oBest, oFrom = openM, uint8(0)
			if openX > oBest {
				oBest, oFrom = openX, 1
			}
			oBest += sc.GapOpen + sc.GapExtend
			ext = Y[idx(i, j-1)].score + sc.GapExtend
			if oBest >= ext {
				Y[idx(i, j)] = tcell{score: oBest, from: oFrom}
			} else {
				Y[idx(i, j)] = tcell{score: ext, from: 2}
			}
		}
	}

	// Best end anywhere on the bottom or right boundary, any layer.
	bestScore, bi, bj, bl := negInf, 0, 0, uint8(0)
	consider := func(i, j int, layer uint8, score int32) {
		if score > bestScore {
			bestScore, bi, bj, bl = score, i, j, layer
		}
	}
	for j := 0; j <= m; j++ {
		consider(n, j, 0, M[idx(n, j)].score)
		consider(n, j, 1, X[idx(n, j)].score)
		consider(n, j, 2, Y[idx(n, j)].score)
	}
	for i := 0; i <= n; i++ {
		consider(i, m, 0, M[idx(i, m)].score)
		consider(i, m, 1, X[idx(i, m)].score)
		consider(i, m, 2, Y[idx(i, m)].score)
	}

	// Traceback to the free start. Free starts live only on the top/left
	// boundary (M cells with from==3), so the walk stops there.
	var cig Cigar
	i, j, layer := bi, bj, bl
	for {
		if layer == 0 {
			c := M[idx(i, j)]
			if c.from == 3 {
				break // free start
			}
			if a[i-1] == b[j-1] {
				cig = cig.push(OpMatch, 1)
			} else {
				cig = cig.push(OpMismatch, 1)
			}
			i--
			j--
			layer = c.from
			continue
		}
		if layer == 1 {
			c := X[idx(i, j)]
			cig = cig.push(OpDelete, 1)
			i--
			layer = c.from
			continue
		}
		c := Y[idx(i, j)]
		cig = cig.push(OpInsert, 1)
		j--
		layer = c.from
	}
	cig = cig.reverse()

	out := OverlapTrace{
		AStart: int32(i), AEnd: int32(bi),
		BStart: int32(j), BEnd: int32(bj),
		Cigar: cig,
	}
	out.Stats = cig.Stats(sc)
	leftA := i == 0
	leftB := j == 0
	rightA := bi == n
	rightB := bj == m
	out.Pattern = classify(leftA, leftB, rightA, rightB)
	return out
}
