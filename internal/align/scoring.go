// Package align implements the pairwise alignment layer of the clustering
// pipeline. It provides reference dynamic-programming aligners (global,
// local, and overlap alignment with affine gap penalties) and, as the
// production path, the paper's anchored banded extension aligner (Figure 5):
// a maximal common substring match found by the suffix tree is extended at
// both ends with banded dynamic programming, and the result is accepted as
// cluster-merge evidence only when it realizes one of the four
// overlap/containment patterns with sufficient quality.
package align

import "fmt"

// Scoring holds alignment scores and penalties. Penalties are negative.
// Opening a gap of length g costs GapOpen + g*GapExtend.
type Scoring struct {
	Match     int32 // score for an identical column (> 0)
	Mismatch  int32 // score for a substitution column (< 0)
	GapOpen   int32 // one-time cost for starting a gap (<= 0)
	GapExtend int32 // per-character gap cost (< 0)
}

// DefaultScoring returns scores in the spirit of EST assembly tools:
// strong mismatch/gap penalties relative to match reward, which keeps
// accepted overlaps near-identity as the paper's clustering criteria demand.
func DefaultScoring() Scoring {
	return Scoring{Match: 2, Mismatch: -3, GapOpen: -4, GapExtend: -2}
}

// Validate reports whether the scoring scheme is sane.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("align: Match must be positive, got %d", s.Match)
	}
	if s.Mismatch >= 0 {
		return fmt.Errorf("align: Mismatch must be negative, got %d", s.Mismatch)
	}
	if s.GapOpen > 0 {
		return fmt.Errorf("align: GapOpen must be non-positive, got %d", s.GapOpen)
	}
	if s.GapExtend >= 0 {
		return fmt.Errorf("align: GapExtend must be negative, got %d", s.GapExtend)
	}
	return nil
}

// Stats summarizes one alignment: its score, the number of alignment columns
// (matches + mismatches + gap characters), and the number of match columns.
type Stats struct {
	Score   int32
	Cols    int32
	Matches int32
}

// Identity returns Matches/Cols, or 0 for an empty alignment.
func (st Stats) Identity() float64 {
	if st.Cols == 0 {
		return 0
	}
	return float64(st.Matches) / float64(st.Cols)
}

// ScoreRatio returns the paper's quality measure: the ratio of the attained
// score to the ideal score of an all-match alignment of the same column
// count. Empty alignments have ratio 0.
func (st Stats) ScoreRatio(sc Scoring) float64 {
	if st.Cols == 0 {
		return 0
	}
	return float64(st.Score) / float64(int64(sc.Match)*int64(st.Cols))
}

// add accumulates another segment's statistics.
func (st Stats) add(o Stats) Stats {
	return Stats{Score: st.Score + o.Score, Cols: st.Cols + o.Cols, Matches: st.Matches + o.Matches}
}

// Pattern is the overlap topology realized by an accepted alignment —
// the four merge-evidence shapes of the paper's Figure 5b.
type Pattern uint8

const (
	// PatternNone marks an alignment that realizes no merge-evidence shape.
	PatternNone Pattern = iota
	// ASuffixBPrefix: a suffix of A overlaps a prefix of B (A starts first).
	ASuffixBPrefix
	// BSuffixAPrefix: a suffix of B overlaps a prefix of A (B starts first).
	BSuffixAPrefix
	// AContainsB: B aligns entirely within A.
	AContainsB
	// BContainsA: A aligns entirely within B.
	BContainsA
)

// String implements fmt.Stringer.
func (p Pattern) String() string {
	switch p {
	case ASuffixBPrefix:
		return "a-suffix/b-prefix"
	case BSuffixAPrefix:
		return "b-suffix/a-prefix"
	case AContainsB:
		return "a-contains-b"
	case BContainsA:
		return "b-contains-a"
	default:
		return "none"
	}
}

// classify derives the pattern from which string boundaries the alignment
// reached on each side. Containment takes precedence so that equal-extent
// alignments report containment rather than a degenerate overlap.
func classify(leftA, leftB, rightA, rightB bool) Pattern {
	switch {
	case leftB && rightB:
		return AContainsB
	case leftA && rightA:
		return BContainsA
	case leftB && rightA:
		return ASuffixBPrefix
	case leftA && rightB:
		return BSuffixAPrefix
	default:
		return PatternNone
	}
}

// Criteria is the acceptance rule applied to an extension result before it
// may merge two clusters.
type Criteria struct {
	// MinScoreRatio is the minimum Stats.ScoreRatio (paper's score/ideal
	// ratio). Typical values are 0.75–0.95.
	MinScoreRatio float64
	// MinIdentity is the minimum fraction of match columns.
	MinIdentity float64
	// MinOverlap is the minimum number of alignment columns; very short
	// overlaps are not merge evidence even if perfect.
	MinOverlap int32
}

// DefaultCriteria mirrors the conservative thresholds the paper tuned for the
// least false positives/negatives.
func DefaultCriteria() Criteria {
	return Criteria{MinScoreRatio: 0.70, MinIdentity: 0.90, MinOverlap: 40}
}

const negInf = int32(-1 << 29)

func max2(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
