package align

import (
	"math/rand"
	"strings"
	"testing"
)

func TestGlobalWithTraceMatchesGlobal(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		a := randSeq(rng, rng.Intn(80))
		b := randSeq(rng, rng.Intn(80))
		want := Global(a, b, sc)
		st, cig := GlobalWithTrace(a, b, sc)
		if st.Score != want.Score {
			t.Fatalf("trial %d: trace score %d != global %d", trial, st.Score, want.Score)
		}
		if err := cig.Validate(a, b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := cig.Stats(sc); got != st && got.Score != st.Score {
			t.Fatalf("trial %d: cigar stats %+v vs %+v", trial, got, st)
		}
	}
}

func TestTraceKnownAlignment(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "ACGTACGTAC")
	b := mustSeq(t, "ACGTAACGTAC") // one inserted A
	st, cig := GlobalWithTrace(a, b, sc)
	if st.Matches != 10 || st.Cols != 11 {
		t.Errorf("stats: %+v", st)
	}
	aLen, bLen := cig.Spans()
	if int(aLen) != len(a) || int(bLen) != len(b) {
		t.Errorf("spans: %d %d", aLen, bLen)
	}
	s := cig.String()
	if !strings.Contains(s, "I") {
		t.Errorf("cigar %q should contain an insertion", s)
	}
}

func TestCigarString(t *testing.T) {
	c := Cigar{{OpMatch, 12}, {OpMismatch, 1}, {OpMatch, 3}, {OpInsert, 1}, {OpDelete, 2}}
	if got := c.String(); got != "12=1X3=1I2D" {
		t.Errorf("cigar string %q", got)
	}
}

func TestCigarPushMerges(t *testing.T) {
	var c Cigar
	c = c.push(OpMatch, 3)
	c = c.push(OpMatch, 2)
	c = c.push(OpInsert, 1)
	c = c.push(OpMatch, 0) // no-op
	if len(c) != 2 || c[0].Len != 5 || c[1].Op != OpInsert {
		t.Errorf("push/merge: %v", c)
	}
}

func TestCigarValidateCatchesLies(t *testing.T) {
	a := mustSeq(t, "ACGT")
	b := mustSeq(t, "ACGA")
	good := Cigar{{OpMatch, 3}, {OpMismatch, 1}}
	if err := good.Validate(a, b); err != nil {
		t.Fatal(err)
	}
	bad := Cigar{{OpMatch, 4}}
	if err := bad.Validate(a, b); err == nil {
		t.Error("claiming a mismatch as a match must fail")
	}
	short := Cigar{{OpMatch, 3}}
	if err := short.Validate(a, b); err == nil {
		t.Error("under-consuming must fail")
	}
	over := Cigar{{OpMatch, 3}, {OpMismatch, 1}, {OpInsert, 5}}
	if err := over.Validate(a, b); err == nil {
		t.Error("overrunning must fail")
	}
	neg := Cigar{{OpMatch, -1}}
	if err := neg.Validate(a, b); err == nil {
		t.Error("negative length must fail")
	}
}

func TestRender(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "ACGTACGTAC")
	b := mustSeq(t, "ACGTAACGTAC")
	_, cig := GlobalWithTrace(a, b, sc)
	out := cig.Render(a, b, 8)
	if !strings.Contains(out, "|") || !strings.Contains(out, "-") {
		t.Errorf("render missing structure:\n%s", out)
	}
	if !strings.Contains(out, "a: ") || !strings.Contains(out, "b: ") {
		t.Errorf("render missing rows:\n%s", out)
	}
	// Wrapped output: 11 columns at width 8 → two blocks.
	if strings.Count(out, "a: ") != 2 {
		t.Errorf("expected 2 wrapped blocks:\n%s", out)
	}
}

func TestTraceEmpty(t *testing.T) {
	sc := DefaultScoring()
	st, cig := GlobalWithTrace(nil, nil, sc)
	if st.Cols != 0 || len(cig) != 0 {
		t.Errorf("empty trace: %+v %v", st, cig)
	}
	a := mustSeq(t, "ACG")
	st, cig = GlobalWithTrace(a, nil, sc)
	if st.Cols != 3 || cig.String() != "3D" {
		t.Errorf("one-sided trace: %+v %q", st, cig.String())
	}
	if err := cig.Validate(a, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if OpMatch.String() != "=" || OpMismatch.String() != "X" ||
		OpInsert.String() != "I" || OpDelete.String() != "D" || Op(9).String() != "?" {
		t.Error("op strings")
	}
}
