package align

import (
	"fmt"
	"strings"

	"pace/internal/seq"
)

// Op is one alignment operation in a CIGAR-style edit script.
type Op uint8

// Alignment operations. OpMatch and OpMismatch both consume one character of
// each sequence ('=' and 'X' in extended CIGAR); OpInsert consumes only from
// b ('I'), OpDelete only from a ('D').
const (
	OpMatch Op = iota
	OpMismatch
	OpInsert
	OpDelete
)

// String implements fmt.Stringer with extended-CIGAR letters.
func (o Op) String() string {
	switch o {
	case OpMatch:
		return "="
	case OpMismatch:
		return "X"
	case OpInsert:
		return "I"
	case OpDelete:
		return "D"
	default:
		return "?"
	}
}

// CigarElem is a run-length-encoded alignment operation.
type CigarElem struct {
	Op  Op
	Len int32
}

// Cigar is an edit script.
type Cigar []CigarElem

// String renders the script in extended-CIGAR notation (e.g. "12=1X3=1I9=").
func (c Cigar) String() string {
	var b strings.Builder
	for _, e := range c {
		fmt.Fprintf(&b, "%d%s", e.Len, e.Op)
	}
	return b.String()
}

// Stats derives alignment statistics from the script under a scoring scheme.
func (c Cigar) Stats(sc Scoring) Stats {
	var st Stats
	for _, e := range c {
		st.Cols += e.Len
		switch e.Op {
		case OpMatch:
			st.Matches += e.Len
			st.Score += e.Len * sc.Match
		case OpMismatch:
			st.Score += e.Len * sc.Mismatch
		case OpInsert, OpDelete:
			st.Score += sc.GapOpen + e.Len*sc.GapExtend
		}
	}
	return st
}

// Spans returns how many characters of a and b the script consumes.
func (c Cigar) Spans() (aLen, bLen int32) {
	for _, e := range c {
		switch e.Op {
		case OpMatch, OpMismatch:
			aLen += e.Len
			bLen += e.Len
		case OpInsert:
			bLen += e.Len
		case OpDelete:
			aLen += e.Len
		}
	}
	return aLen, bLen
}

// push appends op, merging with the preceding element when possible.
func (c Cigar) push(op Op, n int32) Cigar {
	if n == 0 {
		return c
	}
	if len(c) > 0 && c[len(c)-1].Op == op {
		c[len(c)-1].Len += n
		return c
	}
	return append(c, CigarElem{Op: op, Len: n})
}

// reverse flips the script in place and returns it.
func (c Cigar) reverse() Cigar {
	for i, j := 0, len(c)-1; i < j; i, j = i+1, j-1 {
		c[i], c[j] = c[j], c[i]
	}
	return c
}

// Validate checks the script against the two sequences it claims to align.
func (c Cigar) Validate(a, b seq.Sequence) error {
	var i, j int32
	for _, e := range c {
		if e.Len <= 0 {
			return fmt.Errorf("align: non-positive cigar element %d%s", e.Len, e.Op)
		}
		switch e.Op {
		case OpMatch, OpMismatch:
			if int(i+e.Len) > len(a) || int(j+e.Len) > len(b) {
				return fmt.Errorf("align: cigar overruns sequences at %d%s", e.Len, e.Op)
			}
			for k := int32(0); k < e.Len; k++ {
				same := a[i+k] == b[j+k]
				if same != (e.Op == OpMatch) {
					return fmt.Errorf("align: %s at a[%d]/b[%d] contradicts sequences", e.Op, i+k, j+k)
				}
			}
			i += e.Len
			j += e.Len
		case OpDelete:
			if int(i+e.Len) > len(a) {
				return fmt.Errorf("align: deletion overruns a")
			}
			i += e.Len
		case OpInsert:
			if int(j+e.Len) > len(b) {
				return fmt.Errorf("align: insertion overruns b")
			}
			j += e.Len
		default:
			return fmt.Errorf("align: unknown op %d", e.Op)
		}
	}
	if int(i) != len(a) || int(j) != len(b) {
		return fmt.Errorf("align: cigar consumes (%d,%d) of (%d,%d)", i, j, len(a), len(b))
	}
	return nil
}

// Render pretty-prints the aligned rows with a midline ("|" match,
// "." mismatch, space gap), wrapped at the given width (default 60).
func (c Cigar) Render(a, b seq.Sequence, width int) string {
	if width <= 0 {
		width = 60
	}
	var ra, mid, rb []byte
	var i, j int32
	for _, e := range c {
		for k := int32(0); k < e.Len; k++ {
			switch e.Op {
			case OpMatch, OpMismatch:
				ra = append(ra, seq.ByteOf(a[i]))
				rb = append(rb, seq.ByteOf(b[j]))
				if e.Op == OpMatch {
					mid = append(mid, '|')
				} else {
					mid = append(mid, '.')
				}
				i++
				j++
			case OpDelete:
				ra = append(ra, seq.ByteOf(a[i]))
				rb = append(rb, '-')
				mid = append(mid, ' ')
				i++
			case OpInsert:
				ra = append(ra, '-')
				rb = append(rb, seq.ByteOf(b[j]))
				mid = append(mid, ' ')
				j++
			}
		}
	}
	var out strings.Builder
	for off := 0; off < len(ra); off += width {
		end := off + width
		if end > len(ra) {
			end = len(ra)
		}
		fmt.Fprintf(&out, "a: %s\n   %s\nb: %s\n", ra[off:end], mid[off:end], rb[off:end])
		if end < len(ra) {
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// GlobalWithTrace computes the optimal global alignment of a and b and
// returns both its statistics and the full edit script. Unlike Global it
// stores the whole DP matrix (O(n·m) space), so it is intended for
// reporting and verification on EST-sized sequences, not for the clustering
// hot path.
func GlobalWithTrace(a, b seq.Sequence, sc Scoring) (Stats, Cigar) {
	n, m := len(a), len(b)
	// Three layers with predecessor tracking: which layer each cell's
	// best path came from.
	type tcell struct {
		score int32
		from  uint8 // predecessor layer: 0=M, 1=X, 2=Y, 3=origin
	}
	idx := func(i, j int) int { return i*(m+1) + j }
	M := make([]tcell, (n+1)*(m+1))
	X := make([]tcell, (n+1)*(m+1))
	Y := make([]tcell, (n+1)*(m+1))
	for k := range M {
		M[k].score, X[k].score, Y[k].score = negInf, negInf, negInf
	}
	M[0] = tcell{score: 0, from: 3}
	for j := 1; j <= m; j++ {
		open := M[idx(0, j-1)].score + sc.GapOpen + sc.GapExtend
		ext := Y[idx(0, j-1)].score + sc.GapExtend
		if open >= ext {
			Y[idx(0, j)] = tcell{score: open, from: 0}
		} else {
			Y[idx(0, j)] = tcell{score: ext, from: 2}
		}
	}
	for i := 1; i <= n; i++ {
		open := M[idx(i-1, 0)].score + sc.GapOpen + sc.GapExtend
		ext := X[idx(i-1, 0)].score + sc.GapExtend
		if open >= ext {
			X[idx(i, 0)] = tcell{score: open, from: 0}
		} else {
			X[idx(i, 0)] = tcell{score: ext, from: 1}
		}
		for j := 1; j <= m; j++ {
			// M layer.
			s, _ := subst(sc, a[i-1], b[j-1])
			pm, px, py := M[idx(i-1, j-1)].score, X[idx(i-1, j-1)].score, Y[idx(i-1, j-1)].score
			best, from := pm, uint8(0)
			if px > best {
				best, from = px, 1
			}
			if py > best {
				best, from = py, 2
			}
			if best > negInf {
				M[idx(i, j)] = tcell{score: best + s, from: from}
			}
			// X layer (consume a).
			openM := M[idx(i-1, j)].score
			openY := Y[idx(i-1, j)].score
			oBest, oFrom := openM, uint8(0)
			if openY > oBest {
				oBest, oFrom = openY, 2
			}
			oBest += sc.GapOpen + sc.GapExtend
			ext := X[idx(i-1, j)].score + sc.GapExtend
			if oBest >= ext {
				X[idx(i, j)] = tcell{score: oBest, from: oFrom}
			} else {
				X[idx(i, j)] = tcell{score: ext, from: 1}
			}
			// Y layer (consume b).
			openM = M[idx(i, j-1)].score
			openX := X[idx(i, j-1)].score
			oBest, oFrom = openM, uint8(0)
			if openX > oBest {
				oBest, oFrom = openX, 1
			}
			oBest += sc.GapOpen + sc.GapExtend
			ext = Y[idx(i, j-1)].score + sc.GapExtend
			if oBest >= ext {
				Y[idx(i, j)] = tcell{score: oBest, from: oFrom}
			} else {
				Y[idx(i, j)] = tcell{score: ext, from: 2}
			}
		}
	}

	// Pick the best final layer and trace back.
	layer := uint8(0)
	best := M[idx(n, m)].score
	if X[idx(n, m)].score > best {
		best, layer = X[idx(n, m)].score, 1
	}
	if Y[idx(n, m)].score > best {
		best, layer = Y[idx(n, m)].score, 2
	}

	var cig Cigar
	i, j := n, m
	for i > 0 || j > 0 {
		switch layer {
		case 0:
			c := M[idx(i, j)]
			if a[i-1] == b[j-1] {
				cig = cig.push(OpMatch, 1)
			} else {
				cig = cig.push(OpMismatch, 1)
			}
			i--
			j--
			layer = c.from
		case 1:
			c := X[idx(i, j)]
			cig = cig.push(OpDelete, 1)
			i--
			layer = c.from
		case 2:
			c := Y[idx(i, j)]
			cig = cig.push(OpInsert, 1)
			j--
			layer = c.from
		default:
			// origin reached
			i, j = 0, 0
		}
	}
	cig = cig.reverse()
	st := cig.Stats(sc)
	if st.Score != best {
		// Internal inconsistency — should be impossible; surface loudly
		// in tests via the stats mismatch rather than panicking.
		st.Score = best
	}
	return st, cig
}
