package align

import (
	"math/rand"
	"testing"

	"pace/internal/seq"
)

func mustSeq(t testing.TB, s string) seq.Sequence {
	t.Helper()
	out, err := seq.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func randSeq(rng *rand.Rand, n int) seq.Sequence {
	s := make(seq.Sequence, n)
	for i := range s {
		s[i] = seq.Code(rng.Intn(4))
	}
	return s
}

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scoring{
		{Match: 0, Mismatch: -1, GapOpen: -1, GapExtend: -1},
		{Match: 1, Mismatch: 1, GapOpen: -1, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: 1, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: -1, GapExtend: 0},
	}
	for i, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestStatsDerived(t *testing.T) {
	st := Stats{Score: 10, Cols: 10, Matches: 9}
	if st.Identity() != 0.9 {
		t.Errorf("identity %f", st.Identity())
	}
	sc := Scoring{Match: 2, Mismatch: -1, GapOpen: -1, GapExtend: -1}
	if st.ScoreRatio(sc) != 0.5 {
		t.Errorf("ratio %f", st.ScoreRatio(sc))
	}
	var zero Stats
	if zero.Identity() != 0 || zero.ScoreRatio(sc) != 0 {
		t.Error("zero stats must have zero ratios")
	}
}

func TestGlobalIdentical(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "ACGTACGTAC")
	st := Global(a, a, sc)
	if st.Score != int32(len(a))*sc.Match || st.Matches != int32(len(a)) || st.Cols != int32(len(a)) {
		t.Errorf("identical global wrong: %+v", st)
	}
}

func TestGlobalSingleMismatch(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "ACGTACGTAC")
	b := mustSeq(t, "ACGTTCGTAC")
	st := Global(a, b, sc)
	want := 9*sc.Match + sc.Mismatch
	if st.Score != want || st.Matches != 9 || st.Cols != 10 {
		t.Errorf("got %+v want score %d", st, want)
	}
}

func TestGlobalSingleInsertion(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "ACGTACGTAC")
	b := mustSeq(t, "ACGTAACGTAC") // extra A in middle
	st := Global(a, b, sc)
	want := 10*sc.Match + sc.GapOpen + sc.GapExtend
	if st.Score != want {
		t.Errorf("score %d want %d (%+v)", st.Score, want, st)
	}
	if st.Cols != 11 || st.Matches != 10 {
		t.Errorf("counts wrong: %+v", st)
	}
}

func TestGlobalAffinePrefersOneLongGap(t *testing.T) {
	// With affine penalties a 2-gap should cost open + 2*extend, not
	// 2*(open+extend).
	sc := Scoring{Match: 1, Mismatch: -10, GapOpen: -5, GapExtend: -1}
	a := mustSeq(t, "AAAACCCC")
	b := mustSeq(t, "AAAAGGCCCC")
	st := Global(a, b, sc)
	want := 8*sc.Match + sc.GapOpen + 2*sc.GapExtend
	if st.Score != want {
		t.Errorf("score %d want %d", st.Score, want)
	}
}

func TestGlobalEmpty(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "ACGT")
	st := Global(a, seq.Sequence{}, sc)
	want := sc.GapOpen + 4*sc.GapExtend
	if st.Score != want || st.Cols != 4 || st.Matches != 0 {
		t.Errorf("empty-b global: %+v want score %d", st, want)
	}
	st = Global(seq.Sequence{}, seq.Sequence{}, sc)
	if st.Score != 0 || st.Cols != 0 {
		t.Errorf("empty-empty: %+v", st)
	}
}

func TestGlobalSymmetry(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		a := randSeq(rng, 1+rng.Intn(60))
		b := randSeq(rng, 1+rng.Intn(60))
		if Global(a, b, sc).Score != Global(b, a, sc).Score {
			t.Fatalf("global not symmetric at trial %d", i)
		}
	}
}

func TestLocalFindsPlantedSubstring(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(9))
	common := randSeq(rng, 25)
	a := append(append(randSeq(rng, 30), common...), randSeq(rng, 30)...)
	b := append(append(randSeq(rng, 20), common...), randSeq(rng, 40)...)
	st := Local(a, b, sc)
	if st.Score < 25*sc.Match {
		t.Errorf("local score %d < planted %d", st.Score, 25*sc.Match)
	}
	if st.Identity() < 0.9 {
		t.Errorf("local identity %f too low", st.Identity())
	}
}

func TestLocalDisjointIsShort(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "AAAAAAAAAA")
	b := mustSeq(t, "CCCCCCCCCC")
	st := Local(a, b, sc)
	if st.Score != 0 || st.Cols != 0 {
		t.Errorf("disjoint local: %+v", st)
	}
}

func TestLocalAtLeastGlobal(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		a := randSeq(rng, 1+rng.Intn(50))
		b := randSeq(rng, 1+rng.Intn(50))
		if Local(a, b, sc).Score < Global(a, b, sc).Score {
			t.Fatalf("local < global at trial %d", i)
		}
	}
}

func TestOverlapSuffixPrefix(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(21))
	ov := randSeq(rng, 40)
	a := append(randSeq(rng, 30), ov...)         // a ends with ov
	b := append(ov.Clone(), randSeq(rng, 30)...) // b starts with ov
	res := Overlap(a, b, sc)
	if res.Score < 40*sc.Match {
		t.Errorf("overlap score %d", res.Score)
	}
	if res.Pattern != ASuffixBPrefix {
		t.Errorf("pattern %v want %v", res.Pattern, ASuffixBPrefix)
	}
	// Mirrored inputs give the mirrored pattern.
	rev := Overlap(b, a, sc)
	if rev.Pattern != BSuffixAPrefix {
		t.Errorf("mirror pattern %v", rev.Pattern)
	}
	if rev.Score != res.Score {
		t.Errorf("mirror score %d != %d", rev.Score, res.Score)
	}
}

func TestOverlapContainment(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(33))
	inner := randSeq(rng, 50)
	outer := append(append(randSeq(rng, 25), inner...), randSeq(rng, 25)...)
	res := Overlap(outer, inner, sc)
	if res.Pattern != AContainsB {
		t.Errorf("pattern %v want %v", res.Pattern, AContainsB)
	}
	if res.Matches < 50 {
		t.Errorf("matches %d", res.Matches)
	}
	res = Overlap(inner, outer, sc)
	if res.Pattern != BContainsA {
		t.Errorf("pattern %v want %v", res.Pattern, BContainsA)
	}
}

func TestOverlapAtLeastGlobal(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 30; i++ {
		a := randSeq(rng, 1+rng.Intn(60))
		b := randSeq(rng, 1+rng.Intn(60))
		if Overlap(a, b, sc).Score < Global(a, b, sc).Score {
			t.Fatalf("overlap < global at trial %d", i)
		}
	}
}

func TestOverlapEmpty(t *testing.T) {
	sc := DefaultScoring()
	res := Overlap(seq.Sequence{}, mustSeq(t, "ACGT"), sc)
	if res.Cols != 0 {
		t.Errorf("empty overlap: %+v", res)
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		PatternNone:    "none",
		ASuffixBPrefix: "a-suffix/b-prefix",
		BSuffixAPrefix: "b-suffix/a-prefix",
		AContainsB:     "a-contains-b",
		BContainsA:     "b-contains-a",
	} {
		if p.String() != want {
			t.Errorf("Pattern(%d).String() = %q", p, p.String())
		}
	}
}

func TestClassify(t *testing.T) {
	if classify(false, true, true, false) != ASuffixBPrefix {
		t.Error("suffix/prefix")
	}
	if classify(true, false, false, true) != BSuffixAPrefix {
		t.Error("prefix/suffix")
	}
	if classify(false, true, false, true) != AContainsB {
		t.Error("containment")
	}
	if classify(true, false, true, false) != BContainsA {
		t.Error("containment 2")
	}
	if classify(false, false, true, true) != PatternNone {
		t.Error("none")
	}
	// Equal extents: containment wins.
	if classify(true, true, true, true) != AContainsB {
		t.Error("tie-break")
	}
}

func BenchmarkGlobal600(b *testing.B) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(1))
	x, y := randSeq(rng, 600), randSeq(rng, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Global(x, y, sc)
	}
}

func BenchmarkOverlap600(b *testing.B) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(1))
	x, y := randSeq(rng, 600), randSeq(rng, 600)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Overlap(x, y, sc)
	}
}
