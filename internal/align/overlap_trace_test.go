package align

import (
	"math/rand"
	"testing"

	"pace/internal/seq"
)

func TestOverlapWithTraceMatchesOverlap(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		// Mix of related and unrelated pairs.
		var a, b seq.Sequence
		if trial%2 == 0 {
			ov := randSeq(rng, 20+rng.Intn(40))
			a = append(randSeq(rng, rng.Intn(30)), ov...)
			b = append(ov.Clone(), randSeq(rng, rng.Intn(30))...)
			for k := 0; k < 2; k++ {
				b[rng.Intn(len(b))] ^= seq.Code(1 + rng.Intn(3))
			}
		} else {
			a = randSeq(rng, 1+rng.Intn(50))
			b = randSeq(rng, 1+rng.Intn(50))
		}
		want := Overlap(a, b, sc)
		got := OverlapWithTrace(a, b, sc)
		if got.Score != want.Score {
			t.Fatalf("trial %d: trace score %d != overlap %d", trial, got.Score, want.Score)
		}
		// The cigar must validate against the aligned region.
		if err := got.Cigar.Validate(a[got.AStart:got.AEnd], b[got.BStart:got.BEnd]); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if st := got.Cigar.Stats(sc); st.Score != got.Score {
			t.Fatalf("trial %d: cigar stats disagree: %d vs %d", trial, st.Score, got.Score)
		}
	}
}

func TestOverlapWithTraceRegions(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(11))
	ov := randSeq(rng, 40)
	a := append(randSeq(rng, 25), ov...)
	b := append(ov.Clone(), randSeq(rng, 30)...)
	got := OverlapWithTrace(a, b, sc)
	if got.Pattern != ASuffixBPrefix {
		t.Fatalf("pattern %v", got.Pattern)
	}
	if got.AStart != 25 || int(got.AEnd) != len(a) {
		t.Errorf("a region [%d,%d) want [25,%d)", got.AStart, got.AEnd, len(a))
	}
	if got.BStart != 0 || got.BEnd != 40 {
		t.Errorf("b region [%d,%d) want [0,40)", got.BStart, got.BEnd)
	}
	if got.Matches != 40 {
		t.Errorf("matches %d", got.Matches)
	}
}

func TestOverlapWithTraceContainment(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(13))
	inner := randSeq(rng, 30)
	outer := append(append(randSeq(rng, 20), inner...), randSeq(rng, 20)...)
	got := OverlapWithTrace(outer, inner, sc)
	if got.Pattern != AContainsB {
		t.Fatalf("pattern %v", got.Pattern)
	}
	if got.AStart != 20 || got.AEnd != 50 || got.BStart != 0 || got.BEnd != 30 {
		t.Errorf("regions: a[%d,%d) b[%d,%d)", got.AStart, got.AEnd, got.BStart, got.BEnd)
	}
}

func TestOverlapWithTraceEmpty(t *testing.T) {
	sc := DefaultScoring()
	got := OverlapWithTrace(nil, mustSeq(t, "ACGT"), sc)
	if len(got.Cigar) != 0 || got.Cols != 0 {
		t.Errorf("empty: %+v", got)
	}
}

func TestOverlapWithTraceDisjoint(t *testing.T) {
	sc := DefaultScoring()
	a := mustSeq(t, "AAAAAAAAAAAAAAAA")
	b := mustSeq(t, "CCCCCCCCCCCCCCCC")
	got := OverlapWithTrace(a, b, sc)
	// Best overlap of disjoint sequences is empty or trivially short;
	// the cigar must still validate.
	if err := got.Cigar.Validate(a[got.AStart:got.AEnd], b[got.BStart:got.BEnd]); err != nil {
		t.Fatal(err)
	}
	if got.Score < 0 {
		t.Errorf("free-end overlap score must be >= 0, got %d", got.Score)
	}
}
