// Package testutil holds shared helpers for the repo's tests. Its resident
// is the goroutine-leak guard: serving and transport tests spin up real
// goroutines (HTTP servers, admission queues, sim ranks), and a test that
// passes while leaving one behind has really failed — the leak either holds
// resources across the rest of the package's tests or hides a missing
// shutdown path. The guard is stdlib-only: a goroutine-id snapshot plus a
// stack diff over runtime.Stack.
package testutil

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// CheckGoroutines arms the leak guard for one test: it snapshots the live
// goroutines now and, when the test finishes, fails it if goroutines
// created during the test are still running after a short grace window
// (long enough for Close/Shutdown paths to drain on a loaded CI machine).
func CheckGoroutines(t testing.TB) {
	t.Helper()
	snap := Take()
	t.Cleanup(func() {
		if leaked := snap.Leaked(5 * time.Second); len(leaked) > 0 {
			t.Errorf("goroutine leak: %d goroutine(s) outlived the test:\n\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// Snapshot is the set of goroutines alive at capture time.
type Snapshot struct {
	ids map[string]bool
}

// Take captures the id of every currently-live goroutine.
func Take() Snapshot {
	ids := map[string]bool{}
	for id := range stacks() {
		ids[id] = true
	}
	return Snapshot{ids: ids}
}

// Leaked waits up to grace for every goroutine started after the snapshot
// to exit, then returns the stacks of the ones that remain. Only goroutines
// attributable to this module (a "pace/" frame or creator) are reported, so
// runtime and testing service goroutines never count as leaks.
func (s Snapshot) Leaked(grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		leaked := s.diff()
		if len(leaked) == 0 || time.Now().After(deadline) {
			return leaked
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (s Snapshot) diff() []string {
	var out []string
	for id, stack := range stacks() {
		if s.ids[id] || !strings.Contains(stack, "pace/") {
			continue
		}
		out = append(out, stack)
	}
	sort.Strings(out)
	return out
}

// stacks returns every live goroutine's full dump keyed by goroutine id,
// parsed from the "goroutine <id> [<state>]:" headers of runtime.Stack.
func stacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := map[string]string{}
	for _, g := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(g, "\n")
		fields := strings.Fields(header)
		if len(fields) >= 2 && fields[0] == "goroutine" {
			out[fields[1]] = g
		}
	}
	return out
}
