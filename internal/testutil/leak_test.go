package testutil_test

import (
	"strings"
	"testing"
	"time"

	"pace/internal/testutil"
)

// blockUntil parks a goroutine so the guard has something to catch; the
// function name must show up in the reported stack.
func blockUntil(release chan struct{}) {
	<-release
}

func TestLeakedDetectsAndClears(t *testing.T) {
	snap := testutil.Take()

	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		blockUntil(release)
	}()

	leaked := snap.Leaked(50 * time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("got %d leaked goroutines, want 1: %v", len(leaked), leaked)
	}
	if !strings.Contains(leaked[0], "blockUntil") {
		t.Errorf("leaked stack does not name the blocked function:\n%s", leaked[0])
	}

	close(release)
	<-done
	if leaked := snap.Leaked(5 * time.Second); len(leaked) != 0 {
		t.Errorf("goroutine still reported after exiting:\n%s", strings.Join(leaked, "\n\n"))
	}
}

func TestLeakedIgnoresPreexisting(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	go blockUntil(release) // started before the snapshot

	time.Sleep(10 * time.Millisecond)
	snap := testutil.Take()
	if leaked := snap.Leaked(50 * time.Millisecond); len(leaked) != 0 {
		t.Errorf("pre-existing goroutine reported as a leak:\n%s", strings.Join(leaked, "\n\n"))
	}
}
