package baseline

import (
	"testing"

	"pace/internal/cluster"
	"pace/internal/metrics"
	"pace/internal/simulate"
)

func benchSet(t testing.TB, n, genes int, seed int64) *simulate.Benchmark {
	t.Helper()
	cfg := simulate.DefaultConfig(n)
	cfg.NumGenes = genes
	cfg.Seed = seed
	cfg.MeanESTLen = 400
	cfg.SDESTLen = 40
	cfg.MinESTLen = 200
	cfg.ExonLen = [2]int{150, 180}
	cfg.ExonsPerGene = [2]int{3, 3}
	b, err := simulate.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAllPairsClustersCorrectly(t *testing.T) {
	b := benchSet(t, 60, 4, 1)
	res, err := AllPairs(b.ESTs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfMemory {
		t.Fatal("unexpected OOM")
	}
	q, err := metrics.Compare(res.Labels, b.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ < 0.85 {
		t.Errorf("AllPairs quality: %v", q)
	}
	if res.PairsMaterialized == 0 || res.PairBytes != 20*res.PairsMaterialized {
		t.Errorf("memory accounting: %+v", res)
	}
}

func TestAllPairsMemoryBudget(t *testing.T) {
	b := benchSet(t, 80, 2, 2) // deep coverage → many pairs
	res, err := AllPairs(b.ESTs, Options{MemoryBudgetPairs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OutOfMemory {
		t.Fatal("budget of 10 pairs must abort")
	}
	if res.Labels != nil {
		t.Error("aborted run must not report labels")
	}
}

func TestArbitraryOrderClustersCorrectly(t *testing.T) {
	b := benchSet(t, 60, 4, 3)
	res, err := ArbitraryOrder(b.ESTs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := metrics.Compare(res.Labels, b.Truth)
	if err != nil {
		t.Fatal(err)
	}
	if q.OQ < 0.85 {
		t.Errorf("ArbitraryOrder quality: %v", q)
	}
}

// The paper's central claims, in miniature: (1) PaCE's on-demand engine
// never materializes the full pair list the batch baseline needs; (2) the
// decreasing-MCS order processes no more (and typically fewer) alignments
// than arbitrary order at equivalent quality.
func TestPaceBeatsBaselinesOnWork(t *testing.T) {
	b := benchSet(t, 120, 4, 4)
	opts := Options{Seed: 7}

	arb, err := ArbitraryOrder(b.ESTs, opts)
	if err != nil {
		t.Fatal(err)
	}

	ccfg := cluster.DefaultConfig(1)
	ccfg.Window, ccfg.Psi = 6, 20
	pace, err := cluster.Run(b.ESTs, ccfg)
	if err != nil {
		t.Fatal(err)
	}

	if pace.Stats.PairsProcessed > arb.PairsProcessed*3/2 {
		t.Errorf("greedy order did much worse than arbitrary: %d vs %d",
			pace.Stats.PairsProcessed, arb.PairsProcessed)
	}
	qArb, _ := metrics.Compare(arb.Labels, b.Truth)
	qPace, _ := metrics.Compare(pace.Labels, b.Truth)
	if qPace.OQ < qArb.OQ-0.05 {
		t.Errorf("pace quality %v below arbitrary %v", qPace, qArb)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	b := benchSet(t, 40, 3, 5)
	r1, err := ArbitraryOrder(b.ESTs, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ArbitraryOrder(b.ESTs, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PairsProcessed != r2.PairsProcessed || r1.NumClusters != r2.NumClusters {
		t.Error("same seed must reproduce the run")
	}
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func BenchmarkAllPairs60(b *testing.B) {
	bm := benchSet(b, 60, 4, 1)
	for i := 0; i < b.N; i++ {
		if _, err := AllPairs(bm.ESTs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
