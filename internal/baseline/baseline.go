// Package baseline implements the comparator architectures the paper
// measures PaCE against.
//
// AllPairs stands in for the CAP3/Phrap/TIGR-Assembler class of tools
// (paper Table 1): it materializes every candidate pair up front — the
// memory-intensive phase that made those tools un-runnable at 81,414 ESTs in
// 512 MB — and then aligns the pairs in arbitrary order with full (unbanded,
// unanchored) overlap dynamic programming, the time-intensive phase.
//
// ArbitraryOrder isolates one design decision of PaCE: it uses the identical
// suffix-tree pair generator and anchored banded alignment, but processes
// the pairs in arbitrary instead of decreasing maximal-common-substring
// order, which degrades the effectiveness of the cluster-aware pair skipping
// (Figure 7's point).
package baseline

import (
	"math/rand"
	"time"

	"pace/internal/align"
	"pace/internal/pairgen"
	"pace/internal/seq"
	"pace/internal/suffix"
	"pace/internal/unionfind"
)

// Options configures the baselines; zero values take the listed defaults.
type Options struct {
	Window   int            // bucket width for the pair generator (default 6)
	Psi      int            // promising-pair threshold (default 20)
	Scoring  align.Scoring  // alignment scores (default align.DefaultScoring)
	Criteria align.Criteria // acceptance rule (default align.DefaultCriteria)
	Band     int            // band half-width for ArbitraryOrder (default 12)
	Seed     int64          // shuffle seed
	// MemoryBudgetPairs aborts AllPairs when the materialized pair list
	// exceeds this count (0 = unlimited) — modeling Table 1's 'X' entries
	// where 512 MB was insufficient.
	MemoryBudgetPairs int64
}

func (o *Options) fill() {
	if o.Window == 0 {
		o.Window = 6
	}
	if o.Psi == 0 {
		o.Psi = 20
	}
	if o.Scoring == (align.Scoring{}) {
		o.Scoring = align.DefaultScoring()
	}
	if o.Criteria == (align.Criteria{}) {
		o.Criteria = align.DefaultCriteria()
	}
	if o.Band == 0 {
		o.Band = 12
	}
}

// Result is a baseline run's outcome.
type Result struct {
	// Labels is the per-EST cluster labeling (nil if the run aborted).
	Labels []int32
	// NumClusters is the cluster count.
	NumClusters int
	// PairsMaterialized is the peak size of the up-front pair list.
	PairsMaterialized int64
	// PairBytes is the memory the materialized list occupies (20 bytes a
	// pair, as on the wire) — the Table 1 memory axis.
	PairBytes int64
	// PairsProcessed / PairsAccepted mirror the engine counters.
	PairsProcessed int64
	PairsAccepted  int64
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
	// OutOfMemory marks a run that exceeded MemoryBudgetPairs
	// (Table 1's 'X').
	OutOfMemory bool
}

// generateAll drains the suffix-tree pair generator into one list — the
// batch architecture's memory-intensive phase.
func generateAll(set *seq.SetS, opts Options) ([]pairgen.Pair, bool, error) {
	hi := seq.StringID(set.NumStrings())
	owner := suffix.Assign(suffix.Histogram(set, opts.Window, 0, hi), 1)
	byBucket := suffix.CollectOwned(set, opts.Window, owner, 0, 0, hi)
	forest, err := suffix.BuildForest(set, byBucket, opts.Window)
	if err != nil {
		return nil, false, err
	}
	gen, err := pairgen.New(set, forest, opts.Psi)
	if err != nil {
		return nil, false, err
	}
	var all []pairgen.Pair
	for {
		n := len(all)
		all = gen.Next(all, 4096)
		if len(all) == n {
			return all, false, nil
		}
		if opts.MemoryBudgetPairs > 0 && int64(len(all)) > opts.MemoryBudgetPairs {
			return all, true, nil
		}
	}
}

// AllPairs is the batch comparator: materialize all pairs, then align each
// surviving pair with full overlap dynamic programming.
func AllPairs(ests []seq.Sequence, opts Options) (*Result, error) {
	opts.fill()
	start := time.Now()
	set, err := seq.NewSetS(ests)
	if err != nil {
		return nil, err
	}
	pairs, oom, err := generateAll(set, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		PairsMaterialized: int64(len(pairs)),
		PairBytes:         20 * int64(len(pairs)),
	}
	if oom {
		res.OutOfMemory = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

	uf := unionfind.New(set.NumESTs())
	for _, p := range pairs {
		i, j := p.ESTs()
		if uf.Same(int32(i), int32(j)) {
			continue
		}
		ov := align.Overlap(set.Str(p.S1), set.Str(p.S2), opts.Scoring)
		res.PairsProcessed++
		if ov.Pattern != align.PatternNone &&
			ov.Cols >= opts.Criteria.MinOverlap &&
			ov.Identity() >= opts.Criteria.MinIdentity &&
			ov.ScoreRatio(opts.Scoring) >= opts.Criteria.MinScoreRatio {
			res.PairsAccepted++
			uf.Union(int32(i), int32(j))
		}
	}
	res.Labels = uf.Labels()
	res.NumClusters = uf.Count()
	res.Elapsed = time.Since(start)
	return res, nil
}

// ArbitraryOrder is the pair-order ablation: PaCE's generator and anchored
// banded aligner, but pairs shuffled before processing.
func ArbitraryOrder(ests []seq.Sequence, opts Options) (*Result, error) {
	opts.fill()
	start := time.Now()
	set, err := seq.NewSetS(ests)
	if err != nil {
		return nil, err
	}
	pairs, oom, err := generateAll(set, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{
		PairsMaterialized: int64(len(pairs)),
		PairBytes:         20 * int64(len(pairs)),
	}
	if oom {
		res.OutOfMemory = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

	ext, err := align.NewExtender(opts.Scoring, opts.Band)
	if err != nil {
		return nil, err
	}
	uf := unionfind.New(set.NumESTs())
	for _, p := range pairs {
		i, j := p.ESTs()
		if uf.Same(int32(i), int32(j)) {
			continue
		}
		r, err := ext.Extend(set.Str(p.S1), set.Str(p.S2), p.Pos1, p.Pos2, p.MatchLen)
		if err != nil {
			return nil, err
		}
		res.PairsProcessed++
		if r.Accept(opts.Scoring, opts.Criteria) {
			res.PairsAccepted++
			uf.Union(int32(i), int32(j))
		}
	}
	res.Labels = uf.Labels()
	res.NumClusters = uf.Count()
	res.Elapsed = time.Since(start)
	return res, nil
}
