package consensus

import (
	"math/rand"
	"testing"

	"pace/internal/align"
	"pace/internal/seq"
	"pace/internal/simulate"
)

func randSeq(rng *rand.Rand, n int) seq.Sequence {
	s := make(seq.Sequence, n)
	for i := range s {
		s[i] = seq.Code(rng.Intn(4))
	}
	return s
}

// tiledReads cuts overlapping windows from a transcript; read k covers
// [k*step, k*step+readLen).
func tiledReads(tr seq.Sequence, readLen, step int) []seq.Sequence {
	var out []seq.Sequence
	for off := 0; off+readLen <= len(tr); off += step {
		out = append(out, tr[off:off+readLen].Clone())
	}
	return out
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, DefaultOptions()); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := Build([]seq.Sequence{{seq.A}}, []int{3}, DefaultOptions()); err == nil {
		t.Error("out-of-range member accepted")
	}
	opt := DefaultOptions()
	opt.Scoring.Match = 0
	if _, err := Build([]seq.Sequence{{seq.A}}, []int{0}, opt); err == nil {
		t.Error("invalid scoring accepted")
	}
}

func TestSingleMember(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := randSeq(rng, 80)
	res, err := Build([]seq.Sequence{e}, []int{0}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seq.Equal(e) {
		t.Error("single-member consensus must equal the read")
	}
	if res.Used != 1 || res.Excluded != 0 {
		t.Errorf("counts: %+v", res)
	}
	for _, c := range res.Coverage {
		if c != 1 {
			t.Fatal("coverage must be 1 everywhere")
		}
	}
}

func TestErrorFreeTilingReconstructsTranscript(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	transcript := randSeq(rng, 500)
	reads := tiledReads(transcript, 150, 50)
	members := make([]int, len(reads))
	for i := range members {
		members[i] = i
	}
	res, err := Build(reads, members, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Reads cover the whole transcript; consensus must reproduce it.
	if !res.Seq.Equal(transcript) {
		st := align.Global(res.Seq, transcript, align.DefaultScoring())
		t.Fatalf("consensus != transcript (len %d vs %d, identity %.3f)",
			len(res.Seq), len(transcript), st.Identity())
	}
	if res.Used != len(reads) {
		t.Errorf("used %d of %d", res.Used, len(reads))
	}
}

func TestMixedOrientations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	transcript := randSeq(rng, 400)
	reads := tiledReads(transcript, 150, 50)
	for i := 1; i < len(reads); i += 2 {
		reads[i] = reads[i].ReverseComplement()
	}
	members := make([]int, len(reads))
	for i := range members {
		members[i] = i
	}
	res, err := Build(reads, members, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := align.Global(res.Seq, transcript, align.DefaultScoring())
	rcSt := align.Global(res.Seq, transcript.ReverseComplement(), align.DefaultScoring())
	if st.Identity() < 0.99 && rcSt.Identity() < 0.99 {
		t.Fatalf("mixed-strand consensus identity %.3f / %.3f", st.Identity(), rcSt.Identity())
	}
	flips := 0
	for _, f := range res.Flipped {
		if f {
			flips++
		}
	}
	if flips == 0 {
		t.Error("no members flipped despite reverse-complemented reads")
	}
}

func TestErrorsVotedOut(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	transcript := randSeq(rng, 400)
	var reads []seq.Sequence
	// 5x coverage with 2% errors.
	for rep := 0; rep < 5; rep++ {
		for _, r := range tiledReads(transcript, 160, 80) {
			reads = append(reads, simulate.Mutate(r, 0.02, rng))
		}
	}
	members := make([]int, len(reads))
	for i := range members {
		members[i] = i
	}
	res, err := Build(reads, members, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := align.Global(res.Seq, transcript, align.DefaultScoring())
	if st.Identity() < 0.98 {
		t.Fatalf("deep-coverage consensus identity %.3f", st.Identity())
	}
}

func TestJunkMemberExcluded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	transcript := randSeq(rng, 300)
	reads := tiledReads(transcript, 150, 75)
	junkIdx := len(reads)
	reads = append(reads, randSeq(rng, 150)) // unrelated
	members := make([]int, len(reads))
	for i := range members {
		members[i] = i
	}
	res, err := Build(reads, members, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Excluded != 1 {
		t.Errorf("excluded %d want 1 (junk member %d)", res.Excluded, junkIdx)
	}
}

func TestOverhangsExtendConsensus(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	transcript := randSeq(rng, 300)
	// One read covers the middle; flanking reads overlap it by 40+ bases
	// and extend the scaffold in both directions.
	reads := []seq.Sequence{
		transcript[100:220].Clone(),
		transcript[0:140].Clone(),
		transcript[180:300].Clone(),
	}
	res, err := Build(reads, []int{0, 1, 2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seq.Equal(transcript) {
		t.Fatalf("overhang consensus len %d want %d", len(res.Seq), len(transcript))
	}
}

func TestBuildAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	t1 := randSeq(rng, 250)
	t2 := randSeq(rng, 250)
	ests := []seq.Sequence{
		t1[:150].Clone(), t1[100:].Clone(),
		t2[:150].Clone(), t2[100:].Clone(),
	}
	labels := []int32{0, 0, 1, 1}
	out, err := BuildAll(ests, labels, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] == nil || out[1] == nil {
		t.Fatalf("results: %v", out)
	}
	if !out[0].Seq.Equal(t1) || !out[1].Seq.Equal(t2) {
		t.Error("per-cluster consensus wrong")
	}
	if _, err := BuildAll(ests, []int32{0}, DefaultOptions()); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, err := BuildAll(ests, []int32{0, 0, 1, -1}, DefaultOptions()); err == nil {
		t.Error("negative label accepted")
	}
}

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	transcript := randSeq(rng, 1200)
	var reads []seq.Sequence
	for rep := 0; rep < 3; rep++ {
		for _, r := range tiledReads(transcript, 500, 250) {
			reads = append(reads, simulate.Mutate(r, 0.02, rng))
		}
	}
	members := make([]int, len(reads))
	for i := range members {
		members[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(reads, members, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
