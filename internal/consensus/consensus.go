// Package consensus derives a consensus sequence for each EST cluster — the
// downstream step the paper positions clustering as a preprocessor for
// (CAP3-style assembly).
//
// The algorithm is a greedy scaffold assembler: the longest member seeds a
// scaffold; remaining members are repeatedly overlap-aligned against the
// current scaffold (in both orientations, since EST strands are unknown) and
// incorporated when they align well enough, voting base-by-base in scaffold
// coordinates and extending the scaffold where they overhang its ends.
// Passes repeat until no member can be added, so chains of reads that never
// touch the seed directly still assemble. The final consensus is the
// per-position majority.
package consensus

import (
	"fmt"

	"pace/internal/align"
	"pace/internal/seq"
)

// Options configures consensus construction.
type Options struct {
	// Scoring for the scaffold alignments.
	Scoring align.Scoring
	// MinIdentity excludes members whose best alignment to the scaffold
	// falls below this identity.
	MinIdentity float64
	// MinOverlap excludes members aligning over fewer columns than this.
	MinOverlap int32
}

// DefaultOptions returns permissive assembly-style settings.
func DefaultOptions() Options {
	return Options{
		Scoring:     align.DefaultScoring(),
		MinIdentity: 0.85,
		MinOverlap:  30,
	}
}

// Result is one cluster's consensus.
type Result struct {
	// Seq is the consensus sequence.
	Seq seq.Sequence
	// Coverage[i] is the number of reads supporting consensus position i.
	Coverage []int32
	// Used and Excluded count members that did/did not contribute.
	Used, Excluded int
	// SeedMember is the index (into the members slice passed to Build) of
	// the seed read.
	SeedMember int
	// Flipped[k] reports whether member k contributed in reverse-
	// complement orientation.
	Flipped []bool
}

// builder holds the growing scaffold and its vote columns.
type builder struct {
	opt      Options
	scaffold seq.Sequence
	votes    [][seq.AlphabetSize + 1]int32 // [4] is the gap vote
}

// voteBase records one base observation at scaffold position p.
func (b *builder) voteBase(p int32, c seq.Code) { b.votes[p][c]++ }

// voteGap records a gap observation at scaffold position p.
func (b *builder) voteGap(p int32) { b.votes[p][seq.AlphabetSize]++ }

// Build assembles the consensus of the given cluster members.
func Build(ests []seq.Sequence, members []int, opt Options) (*Result, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("consensus: empty cluster")
	}
	if err := opt.Scoring.Validate(); err != nil {
		return nil, err
	}
	for _, m := range members {
		if m < 0 || m >= len(ests) {
			return nil, fmt.Errorf("consensus: member %d out of range", m)
		}
	}

	// Seed: the longest member starts the scaffold.
	seedK := 0
	for k, m := range members {
		if len(ests[m]) > len(ests[members[seedK]]) {
			seedK = k
		}
	}
	b := &builder{opt: opt}
	b.scaffold = ests[members[seedK]].Clone()
	b.votes = make([][seq.AlphabetSize + 1]int32, len(b.scaffold))
	for i, c := range b.scaffold {
		b.voteBase(int32(i), c)
	}

	res := &Result{SeedMember: seedK, Flipped: make([]bool, len(members)), Used: 1}
	used := make([]bool, len(members))
	used[seedK] = true

	// Greedy passes: keep sweeping until a full pass adds nobody, so
	// chained members reachable only through earlier incorporations still
	// join.
	for {
		progress := false
		for k, m := range members {
			if used[k] {
				continue
			}
			flipped, ok := b.incorporate(ests[m])
			if !ok {
				continue
			}
			used[k] = true
			res.Flipped[k] = flipped
			res.Used++
			progress = true
		}
		if !progress {
			break
		}
	}
	res.Excluded = len(members) - res.Used

	// Majority call per scaffold position.
	res.Seq = make(seq.Sequence, 0, len(b.scaffold))
	res.Coverage = make([]int32, 0, len(b.scaffold))
	for _, v := range b.votes {
		bestBase, bestVotes := seq.Code(0), v[0]
		var total int32
		for c := seq.Code(0); c < seq.AlphabetSize; c++ {
			total += v[c]
			if v[c] > bestVotes {
				bestBase, bestVotes = c, v[c]
			}
		}
		if total == 0 || v[seq.AlphabetSize] >= total {
			continue // uncovered or majority-gap position
		}
		res.Seq = append(res.Seq, bestBase)
		res.Coverage = append(res.Coverage, total)
	}
	return res, nil
}

// incorporate aligns m against the scaffold and, when it passes the
// thresholds, votes its bases in and extends the scaffold at both overhangs.
func (b *builder) incorporate(m seq.Sequence) (flipped, ok bool) {
	fwd := align.OverlapWithTrace(b.scaffold, m, b.opt.Scoring)
	rc := m.ReverseComplement()
	rev := align.OverlapWithTrace(b.scaffold, rc, b.opt.Scoring)
	tr, ms := fwd, m
	if rev.Score > fwd.Score {
		tr, ms, flipped = rev, rc, true
	}
	if tr.Identity() < b.opt.MinIdentity || tr.Cols < b.opt.MinOverlap || tr.Pattern == align.PatternNone {
		return false, false
	}

	ai, bj := tr.AStart, tr.BStart
	for _, e := range tr.Cigar {
		switch e.Op {
		case align.OpMatch, align.OpMismatch:
			for k := int32(0); k < e.Len; k++ {
				b.voteBase(ai+k, ms[bj+k])
			}
			ai += e.Len
			bj += e.Len
		case align.OpDelete:
			for k := int32(0); k < e.Len; k++ {
				b.voteGap(ai + k)
			}
			ai += e.Len
		case align.OpInsert:
			bj += e.Len
		}
	}

	// Right overhang first (so left extension does not shift tr.AEnd).
	if int(tr.AEnd) == len(b.scaffold) && int(tr.BEnd) < len(ms) {
		ext := ms[tr.BEnd:]
		b.scaffold = append(b.scaffold, ext...)
		for i, c := range ext {
			b.votes = append(b.votes, [seq.AlphabetSize + 1]int32{})
			b.voteBase(int32(len(b.votes)-1), c)
			_ = i
		}
	}
	// Left overhang.
	if tr.AStart == 0 && tr.BStart > 0 {
		ext := ms[:tr.BStart]
		b.scaffold = append(ext.Clone(), b.scaffold...)
		grown := make([][seq.AlphabetSize + 1]int32, len(ext)+len(b.votes))
		copy(grown[len(ext):], b.votes)
		b.votes = grown
		for i, c := range ext {
			b.voteBase(int32(i), c)
		}
	}
	return flipped, true
}

// BuildAll assembles a consensus for every cluster of a labeling, returned
// by dense label.
func BuildAll(ests []seq.Sequence, labels []int32, opt Options) ([]*Result, error) {
	if len(labels) != len(ests) {
		return nil, fmt.Errorf("consensus: %d labels for %d ESTs", len(labels), len(ests))
	}
	max := int32(-1)
	for _, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("consensus: negative label")
		}
		if l > max {
			max = l
		}
	}
	groups := make([][]int, max+1)
	for i, l := range labels {
		groups[l] = append(groups[l], i)
	}
	out := make([]*Result, len(groups))
	for l, members := range groups {
		if len(members) == 0 {
			continue
		}
		r, err := Build(ests, members, opt)
		if err != nil {
			return nil, fmt.Errorf("consensus: cluster %d: %w", l, err)
		}
		out[l] = r
	}
	return out, nil
}
