package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeOf(t *testing.T) {
	cases := []struct {
		b    byte
		want Code
		ok   bool
	}{
		{'A', A, true}, {'C', C, true}, {'G', G, true}, {'T', T, true},
		{'a', A, true}, {'c', C, true}, {'g', G, true}, {'t', T, true},
		{'N', 0, false}, {'x', 0, false}, {' ', 0, false}, {0, 0, false},
	}
	for _, tc := range cases {
		got, ok := CodeOf(tc.b)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("CodeOf(%q) = %v,%v want %v,%v", tc.b, got, ok, tc.want, tc.ok)
		}
	}
}

func TestByteOfRoundTrip(t *testing.T) {
	for c := Code(0); c < AlphabetSize; c++ {
		got, ok := CodeOf(ByteOf(c))
		if !ok || got != c {
			t.Errorf("round trip failed for code %d", c)
		}
	}
}

func TestComplementInvolution(t *testing.T) {
	for c := Code(0); c < AlphabetSize; c++ {
		if Complement(Complement(c)) != c {
			t.Errorf("complement not an involution at %d", c)
		}
	}
	if Complement(A) != T || Complement(C) != G {
		t.Error("A must pair with T and C with G")
	}
}

func TestParseValid(t *testing.T) {
	s, err := Parse("ACGTacgt")
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "ACGTACGT" {
		t.Errorf("got %q", s.String())
	}
}

func TestParseInvalid(t *testing.T) {
	if _, err := Parse("ACGNT"); err == nil {
		t.Error("want error for N")
	}
	if _, err := Parse("AC GT"); err == nil {
		t.Error("want error for space")
	}
}

func TestParseLossy(t *testing.T) {
	s, n := ParseLossy("ANNGT", A)
	if n != 2 {
		t.Errorf("replaced = %d, want 2", n)
	}
	if s.String() != "AAAGT" {
		t.Errorf("got %q", s.String())
	}
}

func TestParseEmpty(t *testing.T) {
	s, err := Parse("")
	if err != nil || len(s) != 0 {
		t.Errorf("Parse(\"\") = %v, %v", s, err)
	}
}

func TestReverseComplementKnown(t *testing.T) {
	s, _ := Parse("AACGT")
	if got := s.ReverseComplement().String(); got != "ACGTT" {
		t.Errorf("rc(AACGT) = %q, want ACGTT", got)
	}
}

func TestReverseComplementInvolutionProperty(t *testing.T) {
	f := func(raw []byte) bool {
		s := make(Sequence, len(raw))
		for i, b := range raw {
			s[i] = Code(b % AlphabetSize)
		}
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReverseComplementPairingProperty(t *testing.T) {
	// rc(s)[i] must be the complement of s[len-1-i] for every i.
	f := func(raw []byte) bool {
		s := make(Sequence, len(raw))
		for i, b := range raw {
			s[i] = Code(b % AlphabetSize)
		}
		r := s.ReverseComplement()
		for i := range s {
			if r[i] != Complement(s[len(s)-1-i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	s, _ := Parse("ACGT")
	c := s.Clone()
	c[0] = T
	if s[0] != A {
		t.Error("Clone must not share backing storage")
	}
}

func TestEqual(t *testing.T) {
	a, _ := Parse("ACGT")
	b, _ := Parse("ACGT")
	c, _ := Parse("ACGA")
	d, _ := Parse("ACG")
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal misbehaves")
	}
}

func TestStringIDMapping(t *testing.T) {
	for e := ESTID(0); e < 100; e++ {
		f, r := Forward(e), Reverse(e)
		if f.EST() != e || r.EST() != e {
			t.Fatalf("EST mapping broken at %d", e)
		}
		if f.IsReverse() || !r.IsReverse() {
			t.Fatalf("orientation broken at %d", e)
		}
		if f.Mate() != r || r.Mate() != f {
			t.Fatalf("Mate broken at %d", e)
		}
	}
}

func TestNewSetSEmpty(t *testing.T) {
	if _, err := NewSetS(nil); err != ErrEmptySet {
		t.Errorf("want ErrEmptySet, got %v", err)
	}
	if _, err := NewSetS([]Sequence{{}}); err == nil {
		t.Error("want error for empty EST")
	}
}

func TestSetSBasics(t *testing.T) {
	e0, _ := Parse("ACGTT")
	e1, _ := Parse("GGC")
	s, err := NewSetS([]Sequence{e0, e1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumESTs() != 2 || s.NumStrings() != 4 {
		t.Fatalf("counts wrong: %d %d", s.NumESTs(), s.NumStrings())
	}
	if s.TotalChars() != 8 {
		t.Errorf("N = %d, want 8", s.TotalChars())
	}
	if s.AvgLen() != 4 {
		t.Errorf("l = %f, want 4", s.AvgLen())
	}
	if !s.Str(Forward(0)).Equal(e0) {
		t.Error("forward string mismatch")
	}
	if got := s.Str(Reverse(0)).String(); got != "AACGT" {
		t.Errorf("rc string = %q, want AACGT", got)
	}
	if !s.EST(1).Equal(e1) {
		t.Error("EST accessor mismatch")
	}
}

func TestSetSLeftChar(t *testing.T) {
	e0, _ := Parse("ACGT")
	s, _ := NewSetS([]Sequence{e0})
	if s.LeftChar(Forward(0), 0) != Lambda {
		t.Error("pos 0 must have left char λ")
	}
	if s.LeftChar(Forward(0), 1) != A {
		t.Error("pos 1 left char must be A")
	}
	if s.LeftChar(Forward(0), 3) != G {
		t.Error("pos 3 left char must be G")
	}
}

func TestSetSSuffix(t *testing.T) {
	e0, _ := Parse("ACGT")
	s, _ := NewSetS([]Sequence{e0})
	if got := s.Suffix(Forward(0), 2).String(); got != "GT" {
		t.Errorf("suffix = %q, want GT", got)
	}
}

// A suffix of the reverse complement corresponds to a reverse-complemented
// prefix of the forward string; verify the set invariant on random data.
func TestSetSOrientationConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		e := make(Sequence, n)
		for i := range e {
			e[i] = Code(rng.Intn(AlphabetSize))
		}
		s, err := NewSetS([]Sequence{e})
		if err != nil {
			t.Fatal(err)
		}
		if !s.Str(Reverse(0)).Equal(e.ReverseComplement()) {
			t.Fatal("reverse string is not the reverse complement")
		}
	}
}

func BenchmarkReverseComplement(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := make(Sequence, 600)
	for i := range s {
		s[i] = Code(rng.Intn(4))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.ReverseComplement()
	}
}

func BenchmarkParse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	raw := make([]byte, 600)
	for i := range raw {
		raw[i] = codeToByte[rng.Intn(4)]
	}
	str := string(raw)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(str); err != nil {
			b.Fatal(err)
		}
	}
}

// mustParse converts ASCII to a Sequence or fails the test.
func mustParse(t *testing.T, s string) Sequence {
	t.Helper()
	p, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSetSAppendGenerations(t *testing.T) {
	set, err := NewSetS([]Sequence{mustParse(t, "ACGTACGT"), mustParse(t, "TTTTGGGG")})
	if err != nil {
		t.Fatal(err)
	}
	g1, err := set.Append([]Sequence{mustParse(t, "CCCCAAAA")})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := set.Append([]Sequence{mustParse(t, "GATTACAG"), mustParse(t, "ACGTACGT")})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != 1 || g2 != 2 {
		t.Fatalf("generations = %d, %d, want 1, 2", g1, g2)
	}
	if set.NumGenerations() != 3 {
		t.Fatalf("NumGenerations = %d, want 3", set.NumGenerations())
	}
	if set.NumESTs() != 5 || set.NumStrings() != 10 {
		t.Fatalf("n = %d, 2n = %d, want 5, 10", set.NumESTs(), set.NumStrings())
	}
	if set.TotalChars() != 5*8 {
		t.Fatalf("TotalChars = %d, want 40", set.TotalChars())
	}
	wantGens := []Gen{0, 0, 1, 2, 2}
	for e, want := range wantGens {
		if got := set.Generation(ESTID(e)); got != want {
			t.Errorf("Generation(%d) = %d, want %d", e, got, want)
		}
	}
	if set.GenStart(0) != 0 || set.GenStart(1) != 2 || set.GenStart(2) != 3 || set.GenStart(3) != 5 {
		t.Errorf("GenStart boundaries wrong: %d %d %d %d",
			set.GenStart(0), set.GenStart(1), set.GenStart(2), set.GenStart(3))
	}
	if set.GenStartString(2) != Forward(3) {
		t.Errorf("GenStartString(2) = %d, want %d", set.GenStartString(2), Forward(3))
	}
}

// TestSetSTruncateRollsBackAppend proves Truncate is Append's exact inverse:
// after append-then-truncate the set is indistinguishable from one that
// never appended, and a re-append reproduces the original generation tag,
// ids and strings — the contract Session.Add's failure rollback relies on.
func TestSetSTruncateRollsBackAppend(t *testing.T) {
	base := []Sequence{mustParse(t, "ACGTACGT"), mustParse(t, "TTTTGGGG"), mustParse(t, "CCCCAAAA")}
	set, err := NewSetS(base)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := NewSetS(base)
	if err != nil {
		t.Fatal(err)
	}

	batch := []Sequence{mustParse(t, "GATTACAG"), mustParse(t, "ACGTTGCA")}
	g, err := set.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Truncate(len(base)); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	if set.NumESTs() != pristine.NumESTs() || set.NumStrings() != pristine.NumStrings() {
		t.Fatalf("truncated set has n=%d 2n=%d, want %d %d",
			set.NumESTs(), set.NumStrings(), pristine.NumESTs(), pristine.NumStrings())
	}
	if set.TotalChars() != pristine.TotalChars() {
		t.Errorf("TotalChars = %d, want %d", set.TotalChars(), pristine.TotalChars())
	}
	if set.NumGenerations() != pristine.NumGenerations() {
		t.Errorf("NumGenerations = %d, want %d", set.NumGenerations(), pristine.NumGenerations())
	}
	for id := 0; id < set.NumStrings(); id++ {
		if !set.Str(StringID(id)).Equal(pristine.Str(StringID(id))) {
			t.Errorf("string %d differs after rollback", id)
		}
	}

	g2, err := set.Append(batch)
	if err != nil {
		t.Fatalf("re-Append after Truncate: %v", err)
	}
	if g2 != g {
		t.Errorf("re-Append generation = %d, want %d (same as first attempt)", g2, g)
	}
	if set.NumESTs() != len(base)+len(batch) {
		t.Errorf("NumESTs after re-Append = %d, want %d", set.NumESTs(), len(base)+len(batch))
	}
	if got := set.Str(Forward(ESTID(len(base)))); !got.Equal(batch[0]) {
		t.Errorf("re-appended string content differs: %v", got)
	}
	if set.GenStartString(g2) != Forward(ESTID(len(base))) {
		t.Errorf("GenStartString(%d) = %d, want %d", g2, set.GenStartString(g2), Forward(ESTID(len(base))))
	}
}

// TestSetSTruncateMultipleGenerations drops two generations at once and
// checks the generation table shrinks with them.
func TestSetSTruncateMultipleGenerations(t *testing.T) {
	set, err := NewSetS([]Sequence{mustParse(t, "ACGTACGT")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Append([]Sequence{mustParse(t, "TTTTGGGG")}); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Append([]Sequence{mustParse(t, "CCCCAAAA")}); err != nil {
		t.Fatal(err)
	}
	if err := set.Truncate(1); err != nil {
		t.Fatal(err)
	}
	if set.NumGenerations() != 1 || set.NumESTs() != 1 || set.TotalChars() != 8 {
		t.Errorf("after Truncate(1): gens=%d n=%d N=%d, want 1 1 8",
			set.NumGenerations(), set.NumESTs(), set.TotalChars())
	}
	if got := set.Generation(0); got != 0 {
		t.Errorf("Generation(0) = %d, want 0", got)
	}
}

// TestSetSTruncateRejects covers the range guard.
func TestSetSTruncateRejects(t *testing.T) {
	set, err := NewSetS([]Sequence{mustParse(t, "ACGTACGT"), mustParse(t, "TTTTGGGG")})
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Truncate(0); err == nil {
		t.Error("Truncate(0): want error")
	}
	if err := set.Truncate(3); err == nil {
		t.Error("Truncate beyond NumESTs: want error")
	}
	if err := set.Truncate(2); err != nil {
		t.Errorf("Truncate(NumESTs): %v, want nil (no-op)", err)
	}
	if set.NumESTs() != 2 {
		t.Errorf("no-op Truncate changed the set: n=%d", set.NumESTs())
	}
}

// Appending an EST shorter than any realistic bucketing window w must still
// keep the set consistent: the EST gets ids and an rc mate like any other,
// and simply contributes no length->=w suffixes downstream.
func TestSetSAppendShortEST(t *testing.T) {
	set, err := NewSetS([]Sequence{mustParse(t, "ACGTACGTACGT")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Append([]Sequence{mustParse(t, "ACG")}); err != nil {
		t.Fatal(err)
	}
	short := ESTID(1)
	if got := set.Str(Forward(short)); !got.Equal(mustParse(t, "ACG")) {
		t.Errorf("short EST forward string = %v", got)
	}
	if got := set.Str(Reverse(short)); !got.Equal(mustParse(t, "CGT")) {
		t.Errorf("short EST reverse string = %v, want CGT", got)
	}
	if set.TotalChars() != 12+3 {
		t.Errorf("TotalChars = %d, want 15", set.TotalChars())
	}
}

// Duplicate ESTs across batches are legitimate (resequenced clones): they get
// distinct ids and generations while sharing content.
func TestSetSAppendDuplicateAcrossBatches(t *testing.T) {
	est := mustParse(t, "ACGTTGCAACGT")
	set, err := NewSetS([]Sequence{est})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Append([]Sequence{est.Clone()}); err != nil {
		t.Fatal(err)
	}
	if set.NumESTs() != 2 {
		t.Fatalf("NumESTs = %d, want 2", set.NumESTs())
	}
	if !set.EST(0).Equal(set.EST(1)) {
		t.Error("duplicate ESTs should compare equal")
	}
	if set.Generation(0) == set.Generation(1) {
		t.Error("duplicate ESTs across batches should differ in generation")
	}
	if !set.Str(Reverse(0)).Equal(set.Str(Reverse(1))) {
		t.Error("duplicate ESTs should have equal reverse complements")
	}
}

// The paper's pairing invariant s_{2i} = rc(s_{2i-1}) must hold over every
// string after any number of Append calls.
func TestSetSAppendPairingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randSeq := func(n int) Sequence {
		s := make(Sequence, n)
		for i := range s {
			s[i] = Code(rng.Intn(AlphabetSize))
		}
		return s
	}
	set, err := NewSetS([]Sequence{randSeq(30), randSeq(17)})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		ests := make([]Sequence, 1+rng.Intn(3))
		for i := range ests {
			ests[i] = randSeq(5 + rng.Intn(40))
		}
		if _, err := set.Append(ests); err != nil {
			t.Fatal(err)
		}
		for e := ESTID(0); int(e) < set.NumESTs(); e++ {
			fwd, rev := set.Str(Forward(e)), set.Str(Reverse(e))
			if !rev.Equal(fwd.ReverseComplement()) {
				t.Fatalf("after batch %d: EST %d reverse string is not rc(forward)", batch, e)
			}
			if !fwd.Equal(set.EST(e)) {
				t.Fatalf("after batch %d: EST %d forward string differs from EST()", batch, e)
			}
		}
	}
}

// Append must reject bad batches without mutating the set.
func TestSetSAppendRejects(t *testing.T) {
	set, err := NewSetS([]Sequence{mustParse(t, "ACGTACGT")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.Append(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := set.Append([]Sequence{mustParse(t, "ACGT"), {}}); err == nil {
		t.Error("batch with empty EST accepted")
	}
	if set.NumESTs() != 1 || set.NumStrings() != 2 || set.NumGenerations() != 1 {
		t.Errorf("failed Append mutated the set: n=%d 2n=%d gens=%d",
			set.NumESTs(), set.NumStrings(), set.NumGenerations())
	}
}
