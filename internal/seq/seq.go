// Package seq provides the DNA sequence primitives used throughout the
// clustering pipeline: the 4-letter nucleotide alphabet, reverse
// complementation, sequence validation, and the SetS abstraction from the
// paper — the set S = {s_1, ..., s_2n} where s_{2i-1} = e_i is the i-th EST
// and s_{2i} = rc(e_i) is its reverse complement.
package seq

import (
	"errors"
	"fmt"
	"strings"
)

// AlphabetSize is |Σ| for DNA.
const AlphabetSize = 4

// Code is the 2-bit encoding of a nucleotide: A=0, C=1, G=2, T=3.
// The ordering is lexicographic, which the pair-generation algorithm relies
// on when enumerating character pairs (c_i < c_j).
type Code uint8

// Nucleotide codes.
const (
	A Code = 0
	C Code = 1
	G Code = 2
	T Code = 3
)

// Lambda is the sentinel "left character" of a suffix that is a prefix of its
// string (the paper's λ). It is not a valid sequence character; it exists so
// that lset indices can range over Σ ∪ {λ}.
const Lambda Code = 4

// NumLeftChars is |Σ ∪ {λ}|, the number of lsets per node.
const NumLeftChars = 5

var codeToByte = [AlphabetSize]byte{'A', 'C', 'G', 'T'}

// complement[c] is the Watson-Crick complement of code c (A↔T, C↔G).
var complement = [AlphabetSize]Code{T, G, C, A}

// byteToCode maps an ASCII byte to its code, or 0xFF if invalid.
var byteToCode [256]uint8

func init() {
	for i := range byteToCode {
		byteToCode[i] = 0xFF
	}
	byteToCode['A'], byteToCode['a'] = 0, 0
	byteToCode['C'], byteToCode['c'] = 1, 1
	byteToCode['G'], byteToCode['g'] = 2, 2
	byteToCode['T'], byteToCode['t'] = 3, 3
}

// CodeOf returns the Code for an ASCII nucleotide byte.
// ok is false for any byte outside {A,C,G,T,a,c,g,t}.
func CodeOf(b byte) (c Code, ok bool) {
	v := byteToCode[b]
	return Code(v), v != 0xFF
}

// ByteOf returns the upper-case ASCII byte for a code. It panics if c is not
// a valid sequence code (λ has no byte form).
func ByteOf(c Code) byte {
	return codeToByte[c]
}

// Complement returns the Watson-Crick complement of c.
func Complement(c Code) Code {
	return complement[c]
}

// Sequence is a DNA sequence in 2-bit-code-per-byte form (one Code per byte;
// the "2-bit" refers to the value range, not the storage). Storing one code
// per byte keeps suffix scanning branch-free and cheap.
type Sequence []Code

// Parse converts an ASCII string to a Sequence. Characters outside the DNA
// alphabet (including IUPAC ambiguity codes such as N) cause an error that
// identifies the offending position.
func Parse(s string) (Sequence, error) {
	out := make(Sequence, len(s))
	for i := 0; i < len(s); i++ {
		c, ok := CodeOf(s[i])
		if !ok {
			return nil, fmt.Errorf("seq: invalid nucleotide %q at position %d", s[i], i)
		}
		out[i] = c
	}
	return out, nil
}

// ParseLossy converts an ASCII string to a Sequence, replacing any
// non-ACGT character with the given filler code. It reports how many
// characters were replaced. Real EST data contains N and other IUPAC codes;
// assemblers commonly treat them as mismatches against everything, which a
// fixed filler approximates conservatively.
func ParseLossy(s string, filler Code) (Sequence, int) {
	out := make(Sequence, len(s))
	replaced := 0
	for i := 0; i < len(s); i++ {
		c, ok := CodeOf(s[i])
		if !ok {
			c = filler
			replaced++
		}
		out[i] = c
	}
	return out, replaced
}

// String renders the sequence as upper-case ASCII.
func (s Sequence) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, c := range s {
		b.WriteByte(codeToByte[c])
	}
	return b.String()
}

// Clone returns a deep copy of s.
func (s Sequence) Clone() Sequence {
	out := make(Sequence, len(s))
	copy(out, s)
	return out
}

// ReverseComplement returns the reverse complement of s as a new sequence.
func (s Sequence) ReverseComplement() Sequence {
	out := make(Sequence, len(s))
	for i, c := range s {
		out[len(s)-1-i] = complement[c]
	}
	return out
}

// Equal reports whether two sequences are identical.
func (s Sequence) Equal(t Sequence) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// ErrEmptySet is returned when constructing a SetS from zero ESTs.
var ErrEmptySet = errors.New("seq: empty EST set")

// StringID identifies one of the 2n strings in S. Even/odd parity encodes
// orientation: StringID(2i) is EST i in forward orientation, StringID(2i+1)
// is its reverse complement. (The paper's 1-based s_{2i-1}/s_{2i} convention
// mapped to 0-based indices.)
type StringID int32

// ESTID identifies an input EST (0-based).
type ESTID int32

// Forward returns the StringID of EST e in forward orientation.
func Forward(e ESTID) StringID { return StringID(2 * e) }

// Reverse returns the StringID of EST e in reverse-complement orientation.
func Reverse(e ESTID) StringID { return StringID(2*e + 1) }

// EST returns the EST an s-string belongs to.
func (id StringID) EST() ESTID { return ESTID(id / 2) }

// IsReverse reports whether the string is a reverse complement.
func (id StringID) IsReverse() bool { return id&1 == 1 }

// Mate returns the opposite-orientation string of the same EST.
func (id StringID) Mate() StringID { return id ^ 1 }

// Gen is a batch generation tag. The ESTs of NewSetS are generation 0; each
// Append call tags its batch with the next generation. Generations are
// monotone in EST (and therefore string) index, which lets the incremental
// pipeline test freshness with a single id comparison.
type Gen int32

// SetS holds the 2n strings S = {e_1, rc(e_1), e_2, rc(e_2), ...} backing the
// generalized suffix tree. Reverse complements are materialized once so that
// suffix scanning needs no per-access transformation.
//
// The set is appendable: Append adds a new batch of ESTs at the next
// generation without disturbing existing ids, so suffix buckets, trees and
// cluster labels built over earlier generations stay valid.
type SetS struct {
	ests []Sequence // the n input ESTs
	strs []Sequence // the 2n strings, indexed by StringID
	totN int64      // Σ len(e_i): the paper's N
	// genStart[g] is the index of the first EST of generation g; the batch
	// spans [genStart[g], genStart[g+1]) with genStart[len] == n implied.
	genStart []int32
}

// NewSetS builds S from the input ESTs (generation 0). Empty ESTs are
// rejected: they carry no suffixes and would produce degenerate ids
// downstream.
func NewSetS(ests []Sequence) (*SetS, error) {
	if len(ests) == 0 {
		return nil, ErrEmptySet
	}
	s := &SetS{genStart: []int32{0}}
	if err := s.append(ests); err != nil {
		return nil, err
	}
	return s, nil
}

// append adds a batch under the already-registered newest generation.
func (s *SetS) append(ests []Sequence) error {
	base := len(s.ests)
	for i, e := range ests {
		if len(e) == 0 {
			return fmt.Errorf("seq: EST %d is empty", base+i)
		}
		s.ests = append(s.ests, e)
		s.strs = append(s.strs, e, e.ReverseComplement())
		s.totN += int64(len(e))
	}
	return nil
}

// Append adds a batch of ESTs as the next generation and returns that
// generation's tag. Existing StringIDs, ESTIDs and the reverse-complement
// pairing invariant (s_{2i+1} = rc(s_{2i})) are preserved; the new strings
// occupy the id range [GenStartString(g), NumStrings()). An empty batch or an
// empty EST is rejected without mutating the set.
func (s *SetS) Append(ests []Sequence) (Gen, error) {
	if len(ests) == 0 {
		return 0, ErrEmptySet
	}
	for i, e := range ests {
		if len(e) == 0 {
			return 0, fmt.Errorf("seq: EST %d is empty", len(s.ests)+i)
		}
	}
	g := Gen(len(s.genStart))
	s.genStart = append(s.genStart, int32(len(s.ests)))
	if err := s.append(ests); err != nil {
		return 0, err
	}
	return g, nil
}

// Truncate rolls the set back to its first n ESTs, discarding later ESTs,
// their strings, and any generation that starts at or beyond n. It is the
// inverse of Append for a failed batch: a session whose clustering run
// errors after appending can restore the set to exactly its pre-Append
// state, so a retried Append is indistinguishable from a first attempt.
// n must lie in [1, NumESTs()].
func (s *SetS) Truncate(n int) error {
	if n < 1 || n > len(s.ests) {
		return fmt.Errorf("seq: Truncate to %d ESTs outside [1, %d]", n, len(s.ests))
	}
	for _, e := range s.ests[n:] {
		s.totN -= int64(len(e))
	}
	// Zero dropped slots so the backing arrays don't pin dead sequences.
	for i := n; i < len(s.ests); i++ {
		s.ests[i] = nil
	}
	for i := 2 * n; i < len(s.strs); i++ {
		s.strs[i] = nil
	}
	s.ests = s.ests[:n]
	s.strs = s.strs[:2*n]
	for len(s.genStart) > 1 && int(s.genStart[len(s.genStart)-1]) >= n {
		s.genStart = s.genStart[:len(s.genStart)-1]
	}
	return nil
}

// NumGenerations returns how many batches the set holds (>= 1).
func (s *SetS) NumGenerations() int { return len(s.genStart) }

// GenStart returns the index of the first EST of generation g; g ==
// NumGenerations() returns n, so [GenStart(g), GenStart(g+1)) is always the
// batch's EST range.
func (s *SetS) GenStart(g Gen) ESTID {
	if int(g) >= len(s.genStart) {
		return ESTID(len(s.ests))
	}
	return ESTID(s.genStart[g])
}

// GenStartString returns the first StringID of generation g. Strings with id
// >= GenStartString(g) are exactly those of generation >= g — the freshness
// test the incremental pair generator relies on.
func (s *SetS) GenStartString(g Gen) StringID {
	return Forward(s.GenStart(g))
}

// Generation returns the batch generation EST e arrived in.
func (s *SetS) Generation(e ESTID) Gen {
	// Generations are few (one per Add); a linear scan is fine.
	for g := len(s.genStart) - 1; g > 0; g-- {
		if int32(e) >= s.genStart[g] {
			return Gen(g)
		}
	}
	return 0
}

// NumESTs returns n.
func (s *SetS) NumESTs() int { return len(s.ests) }

// NumStrings returns 2n.
func (s *SetS) NumStrings() int { return len(s.strs) }

// TotalChars returns N, the total number of characters across the n ESTs
// (reverse complements not double-counted, matching the paper's N).
func (s *SetS) TotalChars() int64 { return s.totN }

// EST returns the i-th input EST.
func (s *SetS) EST(e ESTID) Sequence { return s.ests[e] }

// Str returns the string with the given StringID.
func (s *SetS) Str(id StringID) Sequence { return s.strs[id] }

// Suffix returns the suffix of string id starting at pos.
func (s *SetS) Suffix(id StringID, pos int32) Sequence {
	return s.strs[id][pos:]
}

// LeftChar returns the left-extension character of the suffix of string id
// starting at pos: the character immediately left of the suffix, or λ when
// the suffix is the whole string (pos == 0).
func (s *SetS) LeftChar(id StringID, pos int32) Code {
	if pos == 0 {
		return Lambda
	}
	return s.strs[id][pos-1]
}

// AvgLen returns l = N/n, the average EST length.
func (s *SetS) AvgLen() float64 {
	return float64(s.totN) / float64(len(s.ests))
}
