package pace

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// pollCtx is a context whose Err trips to context.Canceled on its trip-th
// poll. The engine checks cancellation by polling ctx.Err() at deterministic
// points (phase boundaries, batch-loop iterations), so a pollCtx turns "the
// client gave up mid-run" into a reproducible event: trip = n cancels the
// run at exactly its n-th poll, no goroutines or timing involved.
type pollCtx struct {
	context.Context

	mu    sync.Mutex
	polls int
	trip  int // 0 = never trip (pure poll counter)
}

func newPollCtx(trip int) *pollCtx {
	return &pollCtx{Context: context.Background(), trip: trip}
}

func (c *pollCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.polls++
	if c.trip > 0 && c.polls >= c.trip {
		return context.Canceled
	}
	return nil
}

func (c *pollCtx) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.polls
}

// TestSessionCancelThenRetryMatchesControl is the cancellation half of the
// chaos acceptance gate: cancel an incremental Add at every deterministic
// poll point of its run, assert the failure-atomic rollback each time, then
// retry the batch once and require labels byte-identical to a control
// session that was never canceled. A canceled-then-retried Add must be
// indistinguishable from a single never-canceled Add.
func TestSessionCancelThenRetryMatchesControl(t *testing.T) {
	b := testBenchmark(t, 60, 6, 13)
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18
	batch1, batch2 := b.ESTs[:40], b.ESTs[40:]

	// Control: two Adds, never canceled.
	control, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.Add(batch1); err != nil {
		t.Fatal(err)
	}
	if _, err := control.Add(batch2); err != nil {
		t.Fatal(err)
	}
	want := control.Labels()

	// Counting pass: how many times does the batch-2 run poll the context?
	counter, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := counter.Add(batch1); err != nil {
		t.Fatal(err)
	}
	probe := newPollCtx(0)
	if _, err := counter.AddContext(probe, batch2); err != nil {
		t.Fatalf("counting pass: %v", err)
	}
	polls := probe.count()
	if polls < 3 {
		t.Fatalf("batch run polled ctx only %d times; the engine lost its cancellation points", polls)
	}
	t.Logf("batch-2 run polls ctx %d times", polls)

	// Experiment: one session, canceled at every poll index in turn. Each
	// canceled Add must roll back completely, so the session stays at its
	// post-batch-1 state throughout the sweep.
	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(batch1); err != nil {
		t.Fatal(err)
	}
	pre := sess.Labels()
	for trip := 1; trip <= polls; trip++ {
		_, err := sess.AddContext(newPollCtx(trip), batch2)
		if err == nil {
			t.Fatalf("trip=%d: Add succeeded despite cancellation", trip)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trip=%d: error does not wrap context.Canceled: %v", trip, err)
		}
		if got := sess.NumESTs(); got != len(batch1) {
			t.Fatalf("trip=%d: rollback left %d ESTs, want %d", trip, got, len(batch1))
		}
		if got := sess.Batches(); got != 1 {
			t.Fatalf("trip=%d: rollback left %d batches, want 1", trip, got)
		}
		if !sameLabels(sess.Labels(), pre) {
			t.Fatalf("trip=%d: rollback changed the partition", trip)
		}
	}

	// One retry after the whole cancel sweep must be byte-identical to the
	// never-canceled control.
	if _, err := sess.Add(batch2); err != nil {
		t.Fatalf("retry after cancel sweep: %v", err)
	}
	got := sess.Labels()
	if !sameLabels(got, want) {
		t.Fatalf("retried labels differ from never-canceled control:\n got %v\nwant %v", got, want)
	}
}

// TestSessionCancelParallel exercises the parallel path: a context canceled
// before the call aborts the master–slave machine (the master's poll fails
// rank 0 and fail-stop unwinds the slaves), the session rolls back, and a
// retry matches a never-canceled parallel control.
func TestSessionCancelParallel(t *testing.T) {
	b := testBenchmark(t, 40, 4, 17)
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18
	opt.Processors = 3
	opt.Simulated = true
	batch1, batch2 := b.ESTs[:25], b.ESTs[25:]

	control, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.Add(batch1); err != nil {
		t.Fatal(err)
	}
	if _, err := control.Add(batch2); err != nil {
		t.Fatal(err)
	}
	want := control.Labels()

	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(batch1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.AddContext(ctx, batch2); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled parallel Add: got %v, want context.Canceled", err)
	}
	if got := sess.NumESTs(); got != len(batch1) {
		t.Fatalf("rollback left %d ESTs, want %d", got, len(batch1))
	}
	if _, err := sess.Add(batch2); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if !sameLabels(sess.Labels(), want) {
		t.Fatal("retried parallel labels differ from never-canceled control")
	}
}
