package pace

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pace/internal/cluster"
	"pace/internal/seq"
)

// sessionNormalize renumbers labels by first occurrence so two partitions
// can be compared up to label permutation.
func sessionNormalize(labels []int) []int {
	next := 0
	seen := make(map[int]int, len(labels))
	out := make([]int, len(labels))
	for i, l := range labels {
		m, ok := seen[l]
		if !ok {
			m = next
			seen[l] = next
			next++
		}
		out[i] = m
	}
	return out
}

func sameLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sessionSplits is the prefix-split matrix of the incremental-equivalence
// gate: a big-batch split, a three-way split, and a one-at-a-time tail.
// Values are EST counts and must sum to the benchmark size (80).
var sessionSplits = map[string][]int{
	"70-30":       {56, 24},
	"50-25-25":    {40, 20, 20},
	"tail-by-one": {74, 1, 1, 1, 1, 1, 1},
}

func sessionOptions(t *testing.T, mode string) Options {
	t.Helper()
	opt := DefaultOptions()
	opt.Window = 6
	opt.MinMatch = 18
	switch mode {
	case "seq":
	case "sim":
		opt.Processors = 4
		opt.Simulated = true
	case "real":
		opt.Processors = 4
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	return opt
}

// TestSessionPrefixSplitEquivalence is the tentpole gate: for every prefix
// split and engine mode, feeding batches through a Session yields labels
// permutation-identical to clustering the union from scratch, each
// incremental batch generates strictly fewer promising pairs than the
// from-scratch run, and — because a pair's maximal common substring is a
// property of its two strings alone — the batches' pair counts sum exactly
// to the from-scratch total: every pair is generated once, in the batch
// that introduces its younger string.
//
// PACE_SPLIT, when set, restricts the run to one named split (CI matrix).
func TestSessionPrefixSplitEquivalence(t *testing.T) {
	b := testBenchmark(t, 80, 5, 11)

	splits := sessionSplits
	if only := os.Getenv("PACE_SPLIT"); only != "" {
		part, ok := splits[only]
		if !ok {
			t.Fatalf("PACE_SPLIT=%q names no split in %v", only, splits)
		}
		splits = map[string][]int{only: part}
	}

	for name, split := range splits {
		total := 0
		for _, sz := range split {
			total += sz
		}
		if total != len(b.ESTs) {
			t.Fatalf("split %s covers %d of %d ESTs", name, total, len(b.ESTs))
		}
		for _, mode := range []string{"seq", "sim", "real"} {
			t.Run(name+"/"+mode, func(t *testing.T) {
				opt := sessionOptions(t, mode)

				scratch, err := Cluster(b.ESTs, opt)
				if err != nil {
					t.Fatalf("from-scratch Cluster: %v", err)
				}

				sess, err := NewSession(opt)
				if err != nil {
					t.Fatalf("NewSession: %v", err)
				}
				var generated int64
				off := 0
				for bi, sz := range split {
					cl, err := sess.Add(b.ESTs[off : off+sz])
					if err != nil {
						t.Fatalf("Add batch %d: %v", bi, err)
					}
					off += sz
					generated += cl.Stats.PairsGenerated
					if len(cl.Labels) != off {
						t.Fatalf("batch %d: %d labels for %d ESTs", bi, len(cl.Labels), off)
					}
					if bi == 0 {
						continue
					}
					inc := cl.Stats.Incremental
					if cl.Stats.PairsGenerated >= scratch.Stats.PairsGenerated {
						t.Errorf("batch %d generated %d pairs, want fewer than from-scratch %d",
							bi, cl.Stats.PairsGenerated, scratch.Stats.PairsGenerated)
					}
					if inc.FreshPairs != cl.Stats.PairsGenerated {
						t.Errorf("batch %d: FreshPairs %d != PairsGenerated %d",
							bi, inc.FreshPairs, cl.Stats.PairsGenerated)
					}
					if inc.BucketsRebuilt <= 0 {
						t.Errorf("batch %d: BucketsRebuilt = %d, want > 0", bi, inc.BucketsRebuilt)
					}
					if sz == 1 && inc.BucketsReused <= 0 {
						t.Errorf("single-EST batch %d reused %d buckets, want > 0", bi, inc.BucketsReused)
					}
				}

				if got, want := sessionNormalize(sess.Labels()), sessionNormalize(scratch.Labels); !sameLabels(got, want) {
					t.Errorf("incremental labels differ from from-scratch labels\n got: %v\nwant: %v", got, want)
				}
				// Pair generation partitions across batches: nothing lost,
				// nothing judged twice.
				if generated != scratch.Stats.PairsGenerated {
					t.Errorf("batches generated %d pairs total, from-scratch generated %d",
						generated, scratch.Stats.PairsGenerated)
				}
				if sess.Batches() != len(split) {
					t.Errorf("Batches() = %d, want %d", sess.Batches(), len(split))
				}
				if sess.NumESTs() != len(b.ESTs) {
					t.Errorf("NumESTs() = %d, want %d", sess.NumESTs(), len(b.ESTs))
				}
			})
		}
	}
}

// failRunSet swaps the session's engine entry point for one that performs
// the complete batch run — mutating the sequence set and bucket cache
// exactly as a real run would — and then reports failure. This is the
// latest possible failure point of an Add, so it exercises the full
// rollback. Restored via t.Cleanup.
func failRunSet(t *testing.T) {
	t.Helper()
	orig := runSet
	runSet = func(set *seq.SetS, cfg cluster.Config) (*cluster.Result, error) {
		if _, err := cluster.RunSet(set, cfg); err != nil {
			return nil, err
		}
		return nil, errors.New("injected post-run failure")
	}
	t.Cleanup(func() { runSet = orig })
}

// TestSessionAddFailureAtomicRetry is the failure-atomicity gate: an Add
// that fails after mutating the engine state must leave NumESTs, Batches
// and Labels untouched, and a retried identical Add must succeed with
// labels equal to a never-failed run — on both the sequential (cached) and
// simulated parallel engines.
func TestSessionAddFailureAtomicRetry(t *testing.T) {
	b := testBenchmark(t, 60, 4, 23)
	cut := 45
	for _, mode := range []string{"seq", "sim"} {
		t.Run(mode, func(t *testing.T) {
			opt := sessionOptions(t, mode)

			// Control: the same two batches through a session that never fails.
			control, err := NewSession(opt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := control.Add(b.ESTs[:cut]); err != nil {
				t.Fatal(err)
			}
			controlCl, err := control.Add(b.ESTs[cut:])
			if err != nil {
				t.Fatal(err)
			}

			sess, err := NewSession(opt)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Add(b.ESTs[:cut]); err != nil {
				t.Fatal(err)
			}
			labelsBefore := sess.Labels()

			failRunSet(t)
			if _, err := sess.Add(b.ESTs[cut:]); err == nil {
				t.Fatal("injected failure did not surface")
			}
			if sess.NumESTs() != cut {
				t.Errorf("failed Add changed NumESTs: %d, want %d", sess.NumESTs(), cut)
			}
			if sess.Batches() != 1 {
				t.Errorf("failed Add changed Batches: %d, want 1", sess.Batches())
			}
			if !sameLabels(sess.Labels(), labelsBefore) {
				t.Error("failed Add changed Labels")
			}

			runSet = cluster.RunSet
			cl, err := sess.Add(b.ESTs[cut:])
			if err != nil {
				t.Fatalf("retried Add: %v", err)
			}
			if got, want := sessionNormalize(cl.Labels), sessionNormalize(controlCl.Labels); !sameLabels(got, want) {
				t.Errorf("retried Add labels differ from never-failed run\n got: %v\nwant: %v", got, want)
			}
			if cl.Stats.PairsGenerated != controlCl.Stats.PairsGenerated {
				t.Errorf("retried Add generated %d pairs, never-failed run generated %d",
					cl.Stats.PairsGenerated, controlCl.Stats.PairsGenerated)
			}
			if cl.Stats.Incremental.BucketsRebuilt != controlCl.Stats.Incremental.BucketsRebuilt ||
				cl.Stats.Incremental.BucketsReused != controlCl.Stats.Incremental.BucketsReused {
				t.Errorf("retried Add bucket work (rebuilt=%d reused=%d) differs from never-failed (rebuilt=%d reused=%d)",
					cl.Stats.Incremental.BucketsRebuilt, cl.Stats.Incremental.BucketsReused,
					controlCl.Stats.Incremental.BucketsRebuilt, controlCl.Stats.Incremental.BucketsReused)
			}
		})
	}
}

// TestSessionFirstAddFailureAtomic covers the rollback of a failed *first*
// Add: the session must return to the empty state and accept a retry.
func TestSessionFirstAddFailureAtomic(t *testing.T) {
	b := testBenchmark(t, 40, 3, 31)
	opt := sessionOptions(t, "seq")
	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	failRunSet(t)
	if _, err := sess.Add(b.ESTs); err == nil {
		t.Fatal("injected failure did not surface")
	}
	if sess.NumESTs() != 0 || sess.Batches() != 0 || sess.Labels() != nil {
		t.Fatalf("failed first Add left state behind: n=%d batches=%d labels=%v",
			sess.NumESTs(), sess.Batches(), sess.Labels())
	}

	runSet = cluster.RunSet
	cl, err := sess.Add(b.ESTs)
	if err != nil {
		t.Fatalf("retried first Add: %v", err)
	}
	scratch, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sessionNormalize(cl.Labels), sessionNormalize(scratch.Labels); !sameLabels(got, want) {
		t.Error("retried first Add labels differ from from-scratch run")
	}
}

// TestSessionAddCheckpointFailureRollsBack drives an organic mid-run
// failure (no hook): the engine's periodic checkpoint write fails because a
// plain file squats on the checkpoint directory path, after the batch has
// already been absorbed into the set and cache. The session must roll back
// and, once the path is cleared, the retried Add must match a never-failed
// control.
func TestSessionAddCheckpointFailureRollsBack(t *testing.T) {
	b := testBenchmark(t, 40, 3, 31)
	cut := 30
	opt := sessionOptions(t, "seq")
	ckptPath := filepath.Join(t.TempDir(), "ckpt")
	opt.CheckpointDir = ckptPath
	opt.CheckpointEvery = 1

	control, err := NewSession(sessionOptions(t, "seq"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := control.Add(b.ESTs[:cut]); err != nil {
		t.Fatal(err)
	}
	controlCl, err := control.Add(b.ESTs[cut:])
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(b.ESTs[:cut]); err != nil {
		t.Fatal(err)
	}
	// Squat on the checkpoint path so the next run's snapshot write fails.
	if err := os.RemoveAll(ckptPath); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckptPath, []byte("squatter"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(b.ESTs[cut:]); err == nil {
		t.Fatal("Add with unwritable checkpoint dir: want error")
	}
	if sess.NumESTs() != cut || sess.Batches() != 1 {
		t.Errorf("failed Add left state behind: n=%d batches=%d", sess.NumESTs(), sess.Batches())
	}

	if err := os.Remove(ckptPath); err != nil {
		t.Fatal(err)
	}
	cl, err := sess.Add(b.ESTs[cut:])
	if err != nil {
		t.Fatalf("retried Add after clearing checkpoint path: %v", err)
	}
	if got, want := sessionNormalize(cl.Labels), sessionNormalize(controlCl.Labels); !sameLabels(got, want) {
		t.Error("retried Add labels differ from never-failed control")
	}
	if cl.Stats.PairsGenerated != controlCl.Stats.PairsGenerated {
		t.Errorf("retried Add generated %d pairs, control %d",
			cl.Stats.PairsGenerated, controlCl.Stats.PairsGenerated)
	}
}

// TestSessionCheckpointResume round-trips a session through SaveCheckpoint /
// LoadCheckpoint / ResumeSession and checks the resumed session's next batch
// still matches a from-scratch run over the union.
func TestSessionCheckpointResume(t *testing.T) {
	b := testBenchmark(t, 60, 4, 23)
	opt := sessionOptions(t, "seq")
	cut := 45

	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(b.ESTs[:cut]); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sess.SaveCheckpoint(dir); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}

	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	resumed, err := ResumeSession(opt, b.ESTs[:cut], ResumeLabels(ck))
	if err != nil {
		t.Fatalf("ResumeSession: %v", err)
	}
	if resumed.NumESTs() != cut {
		t.Fatalf("resumed NumESTs = %d, want %d", resumed.NumESTs(), cut)
	}
	cl, err := resumed.Add(b.ESTs[cut:])
	if err != nil {
		t.Fatalf("Add after resume: %v", err)
	}
	if cl.Stats.Incremental.FreshPairs != cl.Stats.PairsGenerated {
		t.Errorf("resumed batch FreshPairs %d != PairsGenerated %d",
			cl.Stats.Incremental.FreshPairs, cl.Stats.PairsGenerated)
	}

	scratch, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sessionNormalize(resumed.Labels()), sessionNormalize(scratch.Labels); !sameLabels(got, want) {
		t.Errorf("resumed labels differ from from-scratch labels\n got: %v\nwant: %v", got, want)
	}
}

// TestSessionResumeErrors covers the resume-path validation edges.
func TestSessionResumeErrors(t *testing.T) {
	opt := sessionOptions(t, "seq")
	if _, err := ResumeSession(opt, []string{"ACGTACGTACGT"}, []int{0, 1}); err == nil {
		t.Error("ResumeSession with mismatched label count: want error")
	}
	if _, err := ResumeSession(opt, []string{"ACGTXCGTACGT"}, []int{0}); err == nil {
		t.Error("ResumeSession with invalid EST: want error")
	}
	bad := opt
	bad.Window = 0
	if _, err := NewSession(bad); err == nil {
		t.Error("NewSession with Window=0: want error")
	}
}

// TestSessionEmptyStates covers accessors before the first Add and the
// empty-batch rejection.
func TestSessionEmptyStates(t *testing.T) {
	opt := sessionOptions(t, "seq")
	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Labels() != nil {
		t.Error("Labels() before first Add: want nil")
	}
	if sess.Clustering() != nil {
		t.Error("Clustering() before first Add: want nil")
	}
	if sess.NumESTs() != 0 || sess.Batches() != 0 {
		t.Errorf("empty session reports %d ESTs, %d batches", sess.NumESTs(), sess.Batches())
	}
	if _, err := sess.Add(nil); err == nil {
		t.Error("Add(nil): want error")
	}
	if err := sess.SaveCheckpoint(t.TempDir()); err == nil {
		t.Error("SaveCheckpoint before first Add: want error")
	}
}

// TestSessionMetrics asserts the pace_incremental_* families are published
// when a session runs with a metrics registry attached.
func TestSessionMetrics(t *testing.T) {
	b := testBenchmark(t, 40, 3, 31)
	opt := sessionOptions(t, "seq")
	opt.Metrics = NewMetricsRegistry()

	sess, err := NewSession(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Add(b.ESTs[:30]); err != nil {
		t.Fatal(err)
	}
	cl, err := sess.Add(b.ESTs[30:])
	if err != nil {
		t.Fatal(err)
	}

	snap := opt.Metrics.Snapshot()
	if got := snap["pace_incremental_batches_total"]; got != 2 {
		t.Errorf("pace_incremental_batches_total = %v, want 2", got)
	}
	if got := snap["pace_incremental_fresh_pairs_total"]; got != float64(cl.Stats.Incremental.FreshPairs) {
		t.Errorf("pace_incremental_fresh_pairs_total = %v, want %d", got, cl.Stats.Incremental.FreshPairs)
	}
	if got := snap["pace_incremental_buckets_rebuilt"]; got != float64(cl.Stats.Incremental.BucketsRebuilt) {
		t.Errorf("pace_incremental_buckets_rebuilt = %v, want %d", got, cl.Stats.Incremental.BucketsRebuilt)
	}
	if got := snap["pace_incremental_batch_ns_count"]; got != 2 {
		t.Errorf("pace_incremental_batch_ns_count = %v, want 2", got)
	}
	var haveStale bool
	for name := range snap {
		if strings.HasPrefix(name, "pace_incremental_stale_suppressed_total") {
			haveStale = true
		}
	}
	if !haveStale {
		t.Error("pace_incremental_stale_suppressed_total missing from snapshot")
	}
}
