package pace

import (
	"io"

	"pace/internal/fasta"
	"pace/internal/seq"
)

// Record is one FASTA entry at the public API boundary.
type Record struct {
	// ID is the token after '>'.
	ID string
	// Desc is the remainder of the header line.
	Desc string
	// Seq is the DNA sequence (upper-case ACGT).
	Seq string
}

// ReadFASTA parses FASTA records from r. Non-ACGT characters (e.g. N) are
// replaced with A — the conservative treatment EST tools apply to ambiguity
// codes — and records with empty sequences are skipped.
func ReadFASTA(r io.Reader) ([]Record, error) {
	recs, err := fasta.ReadAll(r, fasta.Options{
		AllowAmbiguous: true,
		Filler:         seq.A,
		SkipEmpty:      true,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Record, len(recs))
	for i, rec := range recs {
		out[i] = Record{ID: rec.ID, Desc: rec.Desc, Seq: rec.Seq.String()}
	}
	return out, nil
}

// WriteFASTA writes records to w with 60-column wrapping.
func WriteFASTA(w io.Writer, recs []Record) error {
	conv := make([]*fasta.Record, len(recs))
	for i, r := range recs {
		s, err := seq.Parse(r.Seq)
		if err != nil {
			return err
		}
		conv[i] = &fasta.Record{ID: r.ID, Desc: r.Desc, Seq: s}
	}
	return fasta.WriteAll(w, conv, 60)
}

// Sequences extracts the sequences of records, in order — the form Cluster
// accepts.
func Sequences(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Seq
	}
	return out
}
