package pace

import (
	"fmt"

	"pace/internal/altsplice"
	"pace/internal/consensus"
)

// ConsensusResult is the assembled consensus of one cluster.
type ConsensusResult struct {
	// Seq is the consensus sequence.
	Seq string
	// Coverage[i] is the number of reads supporting position i.
	Coverage []int
	// Used and Excluded count members that did / did not contribute.
	Used, Excluded int
}

// Consensus assembles a consensus sequence for every cluster of a
// clustering: the downstream assembly step the paper positions EST
// clustering as a preprocessor for. Results are indexed by cluster label;
// clusters assemble independently via greedy scaffold extension with
// per-position majority voting (strands resolved per member).
func Consensus(ests []string, labels []int) ([]*ConsensusResult, error) {
	parsed, err := parseESTs(ests)
	if err != nil {
		return nil, err
	}
	if len(labels) != len(ests) {
		return nil, fmt.Errorf("pace: %d labels for %d ESTs", len(labels), len(ests))
	}
	l32 := make([]int32, len(labels))
	for i, l := range labels {
		l32[i] = int32(l)
	}
	res, err := consensus.BuildAll(parsed, l32, consensus.DefaultOptions())
	if err != nil {
		return nil, err
	}
	out := make([]*ConsensusResult, len(res))
	for i, r := range res {
		if r == nil {
			continue
		}
		cov := make([]int, len(r.Coverage))
		for k, c := range r.Coverage {
			cov[k] = int(c)
		}
		out[i] = &ConsensusResult{
			Seq:      r.Seq.String(),
			Coverage: cov,
			Used:     r.Used,
			Excluded: r.Excluded,
		}
	}
	return out, nil
}

// SpliceEvent is one candidate alternative-splicing event: a cluster member
// whose alignment to the cluster consensus shows a long internal gap with
// well-matched flanks.
type SpliceEvent struct {
	// Cluster and Member identify where the event was observed (Member
	// indexes the original EST list).
	Cluster, Member int
	// SkippedInMember is true when the member lacks a segment present in
	// the consensus (it came from the exon-skipping isoform); false when
	// the member carries extra sequence the consensus lacks.
	SkippedInMember bool
	// ConsensusPos and GapLen locate the event on the consensus.
	ConsensusPos, GapLen int
	// FlankMatches is the weaker flank's matched-column count — the
	// evidence strength.
	FlankMatches int
}

// DetectSplicing scans every cluster's members against its consensus with a
// jump-state spliced aligner and reports candidate exon-skipping events —
// the paper's named follow-on analysis ("additional processing like
// detection of alternative splicing").
func DetectSplicing(ests []string, labels []int) ([]SpliceEvent, error) {
	parsed, err := parseESTs(ests)
	if err != nil {
		return nil, err
	}
	if len(labels) != len(ests) {
		return nil, fmt.Errorf("pace: %d labels for %d ESTs", len(labels), len(ests))
	}
	groups := map[int][]int{}
	for i, l := range labels {
		groups[l] = append(groups[l], i)
	}
	var out []SpliceEvent
	copt := consensus.DefaultOptions()
	dopt := altsplice.DefaultOptions()
	for l, members := range groups {
		if len(members) < 2 {
			continue
		}
		cres, err := consensus.Build(parsed, members, copt)
		if err != nil {
			return nil, fmt.Errorf("pace: cluster %d consensus: %w", l, err)
		}
		if len(cres.Seq) == 0 {
			continue
		}
		events, err := altsplice.Detect(parsed, members, cres.Seq, dopt)
		if err != nil {
			return nil, fmt.Errorf("pace: cluster %d splice scan: %w", l, err)
		}
		for _, ev := range events {
			out = append(out, SpliceEvent{
				Cluster:         l,
				Member:          ev.Member,
				SkippedInMember: ev.Kind == altsplice.SkippedInMember,
				ConsensusPos:    int(ev.ConsensusPos),
				GapLen:          int(ev.GapLen),
				FlankMatches:    int(ev.FlankMatches),
			})
		}
	}
	return out, nil
}
