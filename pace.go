// Package pace is a Go implementation of PaCE — the space- and time-
// efficient parallel EST clustering system of Kalyanaraman, Aluru and
// Kothari (ICPP 2002).
//
// Given a collection of Expressed Sequence Tags (ESTs), Cluster partitions
// them so that ESTs derived from the same gene land in the same cluster,
// considering both strands of each EST. The pipeline is the paper's:
// a distributed generalized suffix tree is built by bucketing suffixes on
// their first w characters; promising pairs are generated on demand in
// decreasing order of maximal common substring length at O(N) space; and a
// master–slave engine aligns pairs with anchored banded dynamic programming,
// merging clusters (union-find) on the four accepted overlap patterns.
//
// The package also bundles the supporting systems needed to reproduce the
// paper end to end: a synthetic EST benchmark generator with ground truth
// (Simulate), pair-based quality metrics (Evaluate), FASTA I/O, and a
// simulated message-passing machine so multi-processor scaling behaviour can
// be studied on any host (Options.Simulated).
package pace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strconv"
	"time"

	"pace/internal/cluster"
	"pace/internal/mp"
	"pace/internal/seq"
	"pace/internal/telemetry"
	"pace/internal/vfs"
)

// The telemetry implementation lives in an internal package; these aliases
// and constructors make the sinks usable through the public API.
type (
	// MetricsRegistry collects counters, gauges and histograms from every
	// pipeline layer. Serve it with ServeMetrics or snapshot it after a run.
	MetricsRegistry = telemetry.Registry
	// TraceWriter streams Chrome trace-event output (chrome://tracing,
	// Perfetto).
	TraceWriter = telemetry.TraceWriter
	// MetricsServer is the HTTP server behind ServeMetrics.
	MetricsServer = telemetry.Server
	// RunReport is the machine-readable end-of-run artifact plus the
	// paper-style phase and per-rank tables.
	RunReport = telemetry.RunReport
	// PhaseEntry is one row of RunReport.Phases.
	PhaseEntry = telemetry.PhaseEntry
	// RankEntry is one row of RunReport.Ranks.
	RankEntry = telemetry.RankEntry

	// FaultPlan is a deterministic fault-injection schedule for the
	// message-passing layer: a seeded crash (rank × operation count × tag)
	// plus probabilistic drop / duplication / delay / transient errors.
	// Attach one via Options.Fault to chaos-test a run.
	FaultPlan = mp.FaultPlan
	// FaultStats counts the faults a FaultPlan actually injected.
	FaultStats = mp.FaultStats
	// RetryConfig enables bounded exponential-backoff retries of transient
	// transport errors.
	RetryConfig = mp.RetryConfig
	// Checkpoint is a versioned snapshot of the master's clustering state,
	// written periodically when Options.CheckpointDir is set and reloadable
	// with LoadCheckpoint for a resumed run.
	Checkpoint = cluster.Checkpoint
	// RecoveryStats reports fault-recovery and checkpoint activity.
	RecoveryStats = cluster.RecoveryStats
	// IncrementalStats reports what an incremental batch run skipped and
	// did: buckets rebuilt vs reused, fresh pairs emitted, old×old pairs
	// suppressed. See Session.
	IncrementalStats = cluster.IncrementalStats
	// ReconcileStats reports the sharded merge path's reconciliation work
	// (Options.MergeShards): deltas applied, edges received, phase counts
	// and cross-shard forwards. Zero for legacy (MergeShards == 0) runs.
	ReconcileStats = cluster.ReconcileStats

	// FS is the filesystem seam the session store and the checkpointer
	// write through (Session.SaveCheckpointFS, the serving stack's state
	// directory). OSFS returns the real one; NewFaultyFS wraps any FS with
	// a deterministic fault plan for chaos testing.
	FS = vfs.FS
	// FSFaultPlan is a deterministic, seeded, op-count-indexed filesystem
	// fault plan: ENOSPC on writes, torn short-writes, fsync and rename
	// failures, plus a sticky crash at an exact operation index — the
	// filesystem counterpart of FaultPlan.
	FSFaultPlan = vfs.Plan
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// OSFS returns the real filesystem implementation of FS.
func OSFS() FS { return vfs.OS{} }

// NewFaultyFS wraps under with a deterministic fault plan. The same plan
// over the same write sequence injects the same faults, so chaos runs are
// reproducible from the seed alone.
func NewFaultyFS(under FS, plan FSFaultPlan) FS { return vfs.NewFaulty(under, plan) }

// ParseFaultPlan parses an engine chaos spec (the -chaos flag grammar:
// comma-separated seed=N, crash=RANK:AFTER[:TAG], drop=P, dup=P,
// delay=P:DUR, transient=P[:MAX]) into a FaultPlan for Options.Fault.
func ParseFaultPlan(spec string) (*FaultPlan, error) { return mp.ParsePlan(spec) }

// ParseFSFaultPlan parses a filesystem chaos spec (the -chaos-fs flag
// grammar: comma-separated seed=N, crash=OP, pwrite=P, ptorn=P, psync=P,
// prename=P, max=N) into an FSFaultPlan for NewFaultyFS.
func ParseFSFaultPlan(spec string) (FSFaultPlan, error) { return vfs.ParsePlan(spec) }

// RegisterBuildInfo publishes the pace_build_info gauge (module version, go
// version, VCS revision) on the registry, so every scrape identifies the
// binary it came from.
func RegisterBuildInfo(r *MetricsRegistry) { telemetry.RegisterBuildInfo(r) }

// NewTraceWriter starts a Chrome trace stream on w; call Close when done.
func NewTraceWriter(w io.Writer) *TraceWriter { return telemetry.NewTraceWriter(w) }

// ServeMetrics serves Prometheus text (/metrics), expvar (/debug/vars) and
// pprof (/debug/pprof/) for the registry on addr.
func ServeMetrics(addr string, r *MetricsRegistry) (*MetricsServer, error) {
	return telemetry.Serve(addr, r)
}

// LoadCheckpoint reads and verifies the snapshot in dir (written by a run
// with Options.CheckpointDir set). Use Checkpoint.Validate to confirm it
// matches the resumed run's inputs and parameters, then seed
// Options.InitialLabels with ResumeLabels.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	return cluster.LoadCheckpoint(dir)
}

// ResumeLabels converts a checkpoint's partition into the form
// Options.InitialLabels expects.
func ResumeLabels(ck *Checkpoint) []int {
	l32 := ck.Labels()
	out := make([]int, len(l32))
	for i, l := range l32 {
		out[i] = int(l)
	}
	return out
}

// BenchFileName derives the conventional BENCH_<tool>_<stamp>.json name.
func BenchFileName(tool string, now time.Time) string {
	return telemetry.BenchFileName(tool, now)
}

// Options configures Cluster. Start from DefaultOptions.
type Options struct {
	// Processors is the number of ranks; 1 runs the sequential engine,
	// p >= 2 runs one master and p-1 slaves.
	Processors int
	// Simulated runs the parallel engine on the discrete-event simulated
	// machine (virtual clocks, modeled interconnect) instead of real
	// goroutine concurrency. Stats report virtual times.
	Simulated bool
	// SimDeterministic makes a Simulated run fully reproducible by
	// disabling the simulator's measured-compute bridge (which charges
	// real CPU time into the virtual clocks): two identical runs then
	// produce identical virtual times, stats and reports. Ignored unless
	// Simulated.
	SimDeterministic bool
	// Stamp, when non-zero, replaces the report's wall-clock timestamp
	// and zeroes the WallSeconds field in BuildReport, making sim-mode
	// BENCH reports byte-identical across reruns. The zero value keeps
	// the real clock.
	Stamp time.Time

	// Window is the suffix-bucketing prefix width w (paper: 8).
	Window int
	// MinMatch is ψ, the minimum maximal-common-substring length for a
	// pair of ESTs to be considered promising. Must be >= Window.
	MinMatch int
	// BatchSize is the number of pairs per master–slave interaction
	// (paper: 40–60).
	BatchSize int

	// MergeShards selects the merge protocol. 0 (the default) is the
	// legacy protocol: slaves ship per-pair verdicts and the master
	// replays every accepted pair into one union-find. K >= 1 switches to
	// merge deltas: each slave filters its accepted pairs through a local
	// union-find and ships only spanning edges; the master partitions
	// union-find roots into K shards and applies the edges with
	// phase-reconciled concurrent rounds. The final partition is identical
	// either way; deltas shrink master traffic and K > 1 parallelizes the
	// apply. See Stats.Reconcile.
	MergeShards int

	// Alignment scoring.
	Match, Mismatch, GapOpen, GapExtend int
	// Band is the banded-extension half-width (errors tolerated per
	// alignment flank).
	Band int

	// Acceptance thresholds for merging clusters.
	MinOverlap    int
	MinIdentity   float64
	MinScoreRatio float64

	// InitialLabels optionally seeds the clustering with a previous
	// partition over a prefix of the ESTs (incremental re-clustering:
	// pairs already co-clustered are skipped). Entries < 0 mean
	// unconstrained.
	InitialLabels []int

	// Recover keeps a parallel run alive when a slave rank dies
	// mid-protocol: the master reclaims the dead rank's outstanding work
	// and reassigns its generator shards to survivors. Disabled, any rank
	// failure fails the whole run.
	Recover bool
	// SlaveTimeout bounds how long the master waits for any slave report
	// before declaring the run wedged; 0 waits forever.
	SlaveTimeout time.Duration
	// Fault, when non-nil, injects deterministic faults into the
	// message-passing layer (chaos testing). See FaultPlan.
	Fault *FaultPlan
	// Retry retries transient transport errors (injected or otherwise)
	// with exponential backoff. The zero value disables retries.
	Retry RetryConfig

	// CheckpointDir enables periodic checkpointing of the master's
	// clustering state into this directory ("" disables). To resume a
	// killed run, reload with LoadCheckpoint and seed InitialLabels with
	// ResumeLabels.
	CheckpointDir string
	// CheckpointInterval is the wall-clock cadence between snapshots;
	// 0 means 30s.
	CheckpointInterval time.Duration
	// CheckpointEvery snapshots every N slave reports instead of on a
	// timer (useful for tests; 0 uses CheckpointInterval).
	CheckpointEvery int
	// FS routes the engine's periodic checkpoint writes through an
	// explicit filesystem seam (OSFS for the real disk, NewFaultyFS for
	// chaos runs); nil uses the real filesystem.
	FS FS

	// Metrics, when non-nil, receives live instrumentation from every
	// pipeline layer: pair counters, MCS-length / grant-E / bucket-size
	// distributions, WORKBUF occupancy, and per-rank traffic. nil (the
	// default) leaves only per-site pointer tests in the hot paths.
	Metrics *MetricsRegistry
	// Trace, when non-nil, receives Chrome trace events with one timeline
	// per rank (virtual timestamps when Simulated). The caller owns Close.
	Trace *TraceWriter
	// TracePID is the trace process lane the engine's spans land on
	// (default 0). A server hosting many sessions gives each its own lane
	// so their rank timelines don't interleave in the viewer.
	TracePID int
	// TraceProcess names the TracePID lane in the viewer ("" means
	// "pace pipeline").
	TraceProcess string
	// Logger, when non-nil, receives structured lifecycle events
	// (checkpoints, recovery, resume seeding). Its handler must stamp
	// records from an injected telemetry clock if reproducible output
	// matters; nil discards.
	Logger *slog.Logger
}

// DefaultOptions returns the paper-like operating point with the sequential
// engine.
func DefaultOptions() Options {
	return Options{
		Processors:    1,
		Recover:       true,
		Window:        8,
		MinMatch:      20,
		BatchSize:     60,
		Match:         2,
		Mismatch:      -3,
		GapOpen:       -4,
		GapExtend:     -2,
		Band:          12,
		MinOverlap:    40,
		MinIdentity:   0.90,
		MinScoreRatio: 0.70,
	}
}

// PhaseTimes breaks the run into the paper's Table 3 components. In
// simulated mode these are virtual times.
type PhaseTimes struct {
	Partition time.Duration
	Construct time.Duration
	Sort      time.Duration
	Align     time.Duration
	Total     time.Duration
}

// Stats carries a run's counters (the quantities of the paper's Figure 7).
type Stats struct {
	PairsGenerated int64
	PairsProcessed int64
	PairsAccepted  int64
	PairsSkipped   int64
	Merges         int64
	MasterBusy     time.Duration
	// MasterIdle is the master's total non-processing time in parallel
	// runs (zero sequentially): MasterRecvWait + MasterReconcileWait.
	MasterIdle time.Duration
	// MasterRecvWait is the master's dispatch-loop time blocked waiting
	// for slave reports; startup collective waits are excluded.
	MasterRecvWait time.Duration
	// MasterReconcileWait is the master's time applying merge deltas
	// (MergeShards >= 1; zero for legacy runs, where per-pair replay is
	// counted as MasterBusy).
	MasterReconcileWait time.Duration
	// Reconcile reports the sharded merge path's work; zero when
	// MergeShards == 0.
	Reconcile ReconcileStats
	// WorkBufHighWater is the peak WORKBUF occupancy (parallel runs).
	WorkBufHighWater int
	// Recovery reports slave-failure recovery and checkpoint activity.
	Recovery RecoveryStats
	// Incremental reports batch-ingest savings (Session runs; zero for
	// plain one-shot runs).
	Incremental IncrementalStats
	Phases      PhaseTimes
	// PerRank is the per-rank load/communication breakdown, sorted by
	// rank; sequential runs report a single "seq" row.
	PerRank []RankStats
}

// RankStats is one rank's row of the load-balance table: where its time went
// and how much it communicated. Durations are virtual in simulated runs.
type RankStats struct {
	Rank int
	// Role is "master", "slave", or "seq"; a slave that died mid-run and
	// was recovered from appears as "lost" with zeroed counters.
	Role string

	Partition time.Duration
	Construct time.Duration
	Sort      time.Duration
	Align     time.Duration
	Total     time.Duration

	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
	// RecvWait is time blocked in receives — idle time for the master,
	// a load-imbalance signal for slaves.
	RecvWait       time.Duration
	CollectiveOps  int64
	CollectiveTime time.Duration

	PairsGenerated int64
	PairsProcessed int64
	PairsAccepted  int64
	// DeltaEdges is the number of merge-delta spanning edges this slave
	// shipped (MergeShards >= 1; zero for legacy runs).
	DeltaEdges int64
	// Busy is the message-processing time (master only).
	Busy time.Duration
}

// Clustering is the result of Cluster.
type Clustering struct {
	// Labels assigns each input EST a dense cluster label in
	// [0, NumClusters).
	Labels []int
	// NumClusters is the number of clusters found.
	NumClusters int
	// Clusters lists the member indices of every cluster, by label.
	Clusters [][]int
	// Stats carries counters and phase timings.
	Stats Stats
}

// toConfig translates Options to the engine configuration.
func (o Options) toConfig() (cluster.Config, error) {
	if o.Processors < 1 {
		return cluster.Config{}, fmt.Errorf("pace: Processors must be >= 1, got %d", o.Processors)
	}
	cfg := cluster.DefaultConfig(o.Processors)
	cfg.Window = o.Window
	cfg.Psi = o.MinMatch
	cfg.BatchSize = o.BatchSize
	cfg.MergeShards = o.MergeShards
	cfg.Scoring.Match = int32(o.Match)
	cfg.Scoring.Mismatch = int32(o.Mismatch)
	cfg.Scoring.GapOpen = int32(o.GapOpen)
	cfg.Scoring.GapExtend = int32(o.GapExtend)
	cfg.Band = o.Band
	cfg.Criteria.MinOverlap = int32(o.MinOverlap)
	cfg.Criteria.MinIdentity = o.MinIdentity
	cfg.Criteria.MinScoreRatio = o.MinScoreRatio
	if o.Simulated {
		cfg.MP = mp.DefaultSimConfig(o.Processors)
		if o.SimDeterministic {
			cfg.MP.MeasureCompute = false
		}
	} else {
		cfg.MP = mp.Config{Procs: o.Processors, Mode: mp.ModeReal}
	}
	cfg.MP.Fault = o.Fault
	cfg.MP.Retry = o.Retry
	cfg.Recover = o.Recover
	cfg.SlaveTimeout = o.SlaveTimeout
	cfg.Checkpoint = cluster.CheckpointConfig{
		Dir:          o.CheckpointDir,
		Interval:     o.CheckpointInterval,
		EveryReports: o.CheckpointEvery,
		FS:           o.FS,
	}
	if o.InitialLabels != nil {
		cfg.InitialLabels = make([]int32, len(o.InitialLabels))
		for i, l := range o.InitialLabels {
			cfg.InitialLabels[i] = int32(l)
		}
	}
	cfg.Metrics = o.Metrics
	cfg.Trace = o.Trace
	cfg.TracePID = o.TracePID
	cfg.TraceProcess = o.TraceProcess
	cfg.Log = o.Logger
	return cfg, nil
}

// parseESTs validates and converts the input sequences.
func parseESTs(ests []string) ([]seq.Sequence, error) {
	out := make([]seq.Sequence, len(ests))
	for i, e := range ests {
		s, err := seq.Parse(e)
		if err != nil {
			return nil, fmt.Errorf("pace: EST %d: %w", i, err)
		}
		if len(s) == 0 {
			return nil, fmt.Errorf("pace: EST %d is empty", i)
		}
		out[i] = s
	}
	return out, nil
}

// Cluster partitions the ESTs (DNA strings over ACGT; case-insensitive)
// into gene-level clusters. It is a one-batch Session: callers expecting
// more ESTs later should keep a Session and Add batches as they arrive.
func Cluster(ests []string, opt Options) (*Clustering, error) {
	return ClusterContext(context.Background(), ests, opt)
}

// ClusterContext is Cluster bounded by a context: the engine polls ctx at
// phase boundaries and inside its dispatch loops and aborts with an error
// wrapping ctx.Err() when it is done — the hook a server needs to stop a
// run whose client disconnected or whose deadline passed.
func ClusterContext(ctx context.Context, ests []string, opt Options) (*Clustering, error) {
	s, err := NewSession(opt)
	if err != nil {
		return nil, err
	}
	return s.AddContext(ctx, ests)
}

// convertResult translates an engine result into the public Clustering.
func convertResult(res *cluster.Result) *Clustering {
	out := &Clustering{
		Labels:      make([]int, len(res.Labels)),
		NumClusters: res.NumClusters,
		Clusters:    make([][]int, res.NumClusters),
		Stats: Stats{
			PairsGenerated:      res.Stats.PairsGenerated,
			PairsProcessed:      res.Stats.PairsProcessed,
			PairsAccepted:       res.Stats.PairsAccepted,
			PairsSkipped:        res.Stats.PairsSkipped,
			Merges:              res.Stats.Merges,
			MasterBusy:          res.Stats.MasterBusy,
			MasterIdle:          res.Stats.MasterIdle,
			MasterRecvWait:      res.Stats.MasterRecvWait,
			MasterReconcileWait: res.Stats.MasterReconcileWait,
			Reconcile:           res.Stats.Reconcile,
			WorkBufHighWater:    res.Stats.WorkBufHighWater,
			Recovery:            res.Stats.Recovery,
			Incremental:         res.Stats.Incremental,
			Phases: PhaseTimes{
				Partition: res.Stats.Phases.Partition,
				Construct: res.Stats.Phases.Construct,
				Sort:      res.Stats.Phases.Sort,
				Align:     res.Stats.Phases.Align,
				Total:     res.Stats.Phases.Total,
			},
		},
	}
	for _, rs := range res.Stats.PerRank {
		out.Stats.PerRank = append(out.Stats.PerRank, RankStats{
			Rank: rs.Rank, Role: rs.Role,
			Partition: rs.Partition, Construct: rs.Construct,
			Sort: rs.Sort, Align: rs.Align, Total: rs.Total,
			MsgsSent: rs.MsgsSent, BytesSent: rs.BytesSent,
			MsgsRecv: rs.MsgsRecv, BytesRecv: rs.BytesRecv,
			RecvWait:       rs.RecvWait,
			CollectiveOps:  rs.CollectiveOps,
			CollectiveTime: rs.CollectiveTime,
			PairsGenerated: rs.PairsGenerated,
			PairsProcessed: rs.PairsProcessed,
			PairsAccepted:  rs.PairsAccepted,
			DeltaEdges:     rs.DeltaEdges,
			Busy:           rs.Busy,
		})
	}
	for i, l := range res.Labels {
		out.Labels[i] = int(l)
		out.Clusters[l] = append(out.Clusters[l], i)
	}
	return out
}

// BuildReport assembles the machine-readable run report for a clustering
// outcome: the paper's Table-2-style component grouping (GST construction =
// partition + tree building, pair generation = the decreasing-depth sort,
// clustering = alignment), the per-rank load-balance rows, and — when
// opt.Metrics is set — a flattened registry snapshot. wall is the real
// elapsed time around Cluster; the virtual run-time is taken from the phase
// totals when opt.Simulated.
func BuildReport(cl *Clustering, opt Options, tool, dataset string, numESTs int, wall time.Duration) *RunReport {
	st := cl.Stats
	rep := &RunReport{
		Tool:    tool,
		Dataset: dataset,
		Params: map[string]string{
			"w":     strconv.Itoa(opt.Window),
			"psi":   strconv.Itoa(opt.MinMatch),
			"batch": strconv.Itoa(opt.BatchSize),
		},
		Procs:       opt.Processors,
		Simulated:   opt.Simulated,
		WallSeconds: wall.Seconds(),
		NumESTs:     numESTs,
		NumClusters: cl.NumClusters,
		Phases: []PhaseEntry{
			{Name: "gst-construction", Seconds: (st.Phases.Partition + st.Phases.Construct).Seconds()},
			{Name: "pair-generation", Seconds: st.Phases.Sort.Seconds()},
			{Name: "clustering", Seconds: st.Phases.Align.Seconds()},
			{Name: "total", Seconds: st.Phases.Total.Seconds()},
		},
	}
	if opt.Simulated {
		rep.VirtualSeconds = st.Phases.Total.Seconds()
	}
	for _, rs := range st.PerRank {
		rep.Ranks = append(rep.Ranks, RankEntry{
			Rank: rs.Rank, Role: rs.Role,
			PartitionSeconds: rs.Partition.Seconds(),
			ConstructSeconds: rs.Construct.Seconds(),
			PairgenSeconds:   rs.Sort.Seconds(),
			AlignSeconds:     rs.Align.Seconds(),
			TotalSeconds:     rs.Total.Seconds(),
			MsgsSent:         rs.MsgsSent, BytesSent: rs.BytesSent,
			MsgsRecv: rs.MsgsRecv, BytesRecv: rs.BytesRecv,
			RecvWaitSeconds: rs.RecvWait.Seconds(),
			PairsGenerated:  rs.PairsGenerated,
			PairsProcessed:  rs.PairsProcessed,
			PairsAccepted:   rs.PairsAccepted,
		})
	}
	rep.AttachCounters(opt.Metrics)
	if opt.Stamp.IsZero() {
		rep.Stamp()
	} else {
		rep.StampAt(opt.Stamp)
		rep.WallSeconds = 0
	}
	return rep
}
