package pace

// Public-API coverage of the fault-tolerance surface: chaos injection,
// slave-failure recovery, and checkpoint/restart through Options.

import (
	"testing"
)

func TestClusterSurvivesSlaveCrash(t *testing.T) {
	b := testBenchmark(t, 80, 5, 41)
	opt := DefaultOptions()
	opt.Window, opt.MinMatch = 6, 18
	opt.Processors = 4
	opt.Simulated = true
	opt.BatchSize = 8

	baseline, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Kill slave 2 on its 3rd report; tag 1 is the slave-report tag.
	chaos := opt
	chaos.Fault = &FaultPlan{Seed: 1, CrashRank: 2, CrashAfter: 3, CrashTag: 1}
	cl, err := Cluster(b.ESTs, chaos)
	if err != nil {
		t.Fatalf("run did not survive the crash: %v", err)
	}
	if cl.Stats.Recovery.RanksLost != 1 {
		t.Errorf("RanksLost = %d, want 1", cl.Stats.Recovery.RanksLost)
	}
	if cl.NumClusters != baseline.NumClusters {
		t.Errorf("clusters = %d, failure-free run found %d", cl.NumClusters, baseline.NumClusters)
	}
	for i := range cl.Labels {
		for j := range cl.Labels {
			if (cl.Labels[i] == cl.Labels[j]) != (baseline.Labels[i] == baseline.Labels[j]) {
				t.Fatalf("partition differs from failure-free run at ESTs %d,%d", i, j)
			}
		}
	}

	// Recover=false restores fail-stop.
	failStop := chaos
	failStop.Recover = false
	if _, err := Cluster(b.ESTs, failStop); err == nil {
		t.Error("Recover=false must surface the crash")
	}
}

func TestClusterCheckpointResume(t *testing.T) {
	b := testBenchmark(t, 60, 4, 42)
	dir := t.TempDir()

	opt := DefaultOptions()
	opt.Window, opt.MinMatch = 6, 18
	opt.CheckpointDir = dir
	opt.CheckpointEvery = 2
	baseline, err := Cluster(b.ESTs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Stats.Recovery.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}

	ck, err := LoadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Validate(len(b.ESTs), opt.Window, opt.MinMatch); err != nil {
		t.Fatal(err)
	}

	resumed := DefaultOptions()
	resumed.Window, resumed.MinMatch = 6, 18
	resumed.InitialLabels = ResumeLabels(ck)
	cl, err := Cluster(b.ESTs, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumClusters != baseline.NumClusters {
		t.Errorf("resumed clusters = %d, baseline %d", cl.NumClusters, baseline.NumClusters)
	}
	// The final checkpoint already holds the whole partition: nothing left
	// to merge, and the seeded merges account for all baseline merges.
	if cl.Stats.Merges != 0 {
		t.Errorf("resumed run merged %d more clusters", cl.Stats.Merges)
	}
	if cl.Stats.Recovery.SeedMerges != baseline.Stats.Merges {
		t.Errorf("SeedMerges = %d, baseline merged %d",
			cl.Stats.Recovery.SeedMerges, baseline.Stats.Merges)
	}
	if cl.Stats.PairsProcessed >= baseline.Stats.PairsProcessed {
		t.Errorf("resume reprocessed pairs: %d vs %d",
			cl.Stats.PairsProcessed, baseline.Stats.PairsProcessed)
	}
}
